// Unit tests for the mobility substrate: the shared advance() kinematics,
// each model's trip geometry, the walker population driver, and the factory.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "engine/thread_pool.h"
#include "geom/vec2.h"
#include "mobility/factory.h"
#include "mobility/mrwp.h"
#include "mobility/random_direction.h"
#include "mobility/random_walk.h"
#include "mobility/rwp.h"
#include "mobility/static_model.h"
#include "mobility/walker.h"

namespace {

namespace mobility = manhattan::mobility;
using manhattan::geom::vec2;
using manhattan::rng::rng;

constexpr double kL = 100.0;

TEST(advance_test, mid_leg_moves_exact_distance) {
    mobility::manhattan_random_waypoint model(kL);
    rng g{1};
    mobility::trip_state s;
    s.pos = {10, 10};
    s.waypoint = {10, 50};  // vertical leg of length 40
    s.dest = {30, 50};
    s.leg = 0;
    const auto ev = mobility::advance(model, s, 7.0, g);
    EXPECT_EQ(ev.turns, 0u);
    EXPECT_EQ(ev.arrivals, 0u);
    EXPECT_DOUBLE_EQ(s.pos.x, 10.0);
    EXPECT_DOUBLE_EQ(s.pos.y, 17.0);
    EXPECT_EQ(s.leg, 0);
}

TEST(advance_test, crossing_the_turn_point_counts_a_turn) {
    mobility::manhattan_random_waypoint model(kL);
    rng g{1};
    mobility::trip_state s;
    s.pos = {10, 48};
    s.waypoint = {10, 50};
    s.dest = {30, 50};
    s.leg = 0;
    const auto ev = mobility::advance(model, s, 5.0, g);
    EXPECT_EQ(ev.turns, 1u);
    EXPECT_EQ(ev.arrivals, 0u);
    EXPECT_EQ(s.leg, 1);
    // 2 up then 3 right.
    EXPECT_DOUBLE_EQ(s.pos.x, 13.0);
    EXPECT_DOUBLE_EQ(s.pos.y, 50.0);
    EXPECT_EQ(s.waypoint, s.dest);
}

TEST(advance_test, arrival_draws_next_trip) {
    mobility::manhattan_random_waypoint model(kL);
    rng g{2};
    mobility::trip_state s;
    s.pos = {10, 49};
    s.waypoint = {10, 50};
    s.dest = {10.5, 50};
    s.leg = 0;
    const auto ev = mobility::advance(model, s, 3.0, g);
    EXPECT_GE(ev.arrivals, 1u);
    // After arriving at (10.5, 50) the agent continues on a fresh trip and
    // has consumed exactly distance 3 in Manhattan metric along the way.
    EXPECT_TRUE(s.pos.x >= 0 && s.pos.x <= kL && s.pos.y >= 0 && s.pos.y <= kL);
}

TEST(advance_test, zero_distance_is_a_no_op) {
    mobility::manhattan_random_waypoint model(kL);
    rng g{3};
    mobility::trip_state s = model.stationary_state(g);
    const mobility::trip_state before = s;
    const auto ev = mobility::advance(model, s, 0.0, g);
    EXPECT_EQ(ev.turns, 0u);
    EXPECT_EQ(before.pos, s.pos);
}

TEST(advance_test, static_model_terminates) {
    mobility::static_model model(kL);
    rng g{4};
    mobility::trip_state s = model.stationary_state(g);
    const vec2 before = s.pos;
    const auto ev = mobility::advance(model, s, 1e9, g);  // must not spin forever
    EXPECT_EQ(before, s.pos);
    (void)ev;
}

TEST(advance_test, mrwp_step_displacement_is_at_most_v_in_l1) {
    // Within a trip the Manhattan displacement per unit distance is exactly 1;
    // arrivals can only shorten the net displacement.
    mobility::manhattan_random_waypoint model(kL);
    rng g{5};
    mobility::trip_state s = model.stationary_state(g);
    for (int i = 0; i < 2000; ++i) {
        const vec2 before = s.pos;
        const auto ev = mobility::advance(model, s, 2.5, g);
        const double l1 = manhattan::geom::manhattan_dist(before, s.pos);
        ASSERT_LE(l1, 2.5 + 1e-9);
        if (ev.arrivals == 0) {
            ASSERT_NEAR(l1, 2.5, 1e-9);  // exact while on one trip
        }
    }
}

TEST(mrwp_test, begin_trip_is_axis_aligned) {
    mobility::manhattan_random_waypoint model(kL);
    rng g{6};
    for (int i = 0; i < 500; ++i) {
        mobility::trip_state s;
        s.pos = {g.uniform(0, kL), g.uniform(0, kL)};
        model.begin_trip(s, g);
        EXPECT_EQ(s.leg, 0);
        // The turn point shares a coordinate with both endpoints.
        const bool p1 = (s.waypoint.x == s.pos.x) && (s.waypoint.y == s.dest.y);
        const bool p2 = (s.waypoint.y == s.pos.y) && (s.waypoint.x == s.dest.x);
        EXPECT_TRUE(p1 || p2);
        EXPECT_TRUE(s.dest.x >= 0 && s.dest.x <= kL && s.dest.y >= 0 && s.dest.y <= kL);
    }
}

TEST(mrwp_test, both_manhattan_paths_are_used) {
    mobility::manhattan_random_waypoint model(kL);
    rng g{7};
    int vertical_first = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        mobility::trip_state s;
        s.pos = {kL / 2, kL / 2};
        model.begin_trip(s, g);
        if (s.waypoint.x == s.pos.x && s.waypoint.y != s.pos.y) {
            ++vertical_first;
        }
    }
    EXPECT_NEAR(static_cast<double>(vertical_first) / n, 0.5, 0.05);
}

TEST(mrwp_test, length_biased_trip_mean_is_five_sixths_l) {
    // Uniform trips have E[d_1] = 2L/3; length-biasing raises it to
    // E[d^2]/E[d] = (5L^2/9)/(2L/3) = 5L/6.
    mobility::manhattan_random_waypoint model(kL);
    rng g{8};
    double sum = 0.0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
        const auto trip = model.sample_length_biased_trip(g);
        sum += manhattan::geom::manhattan_dist(trip.start, trip.dest);
    }
    EXPECT_NEAR(sum / n / kL, 5.0 / 6.0, 0.005);
}

TEST(mrwp_test, stationary_state_is_on_its_path) {
    mobility::manhattan_random_waypoint model(kL);
    rng g{9};
    for (int i = 0; i < 2000; ++i) {
        const auto s = model.stationary_state(g);
        if (s.leg == 0) {
            // First leg: pos is axis-aligned with the waypoint.
            EXPECT_TRUE(s.pos.x == s.waypoint.x || s.pos.y == s.waypoint.y);
        } else {
            EXPECT_EQ(s.waypoint, s.dest);
            // Final leg of a Manhattan path: axis-aligned with dest.
            EXPECT_TRUE(std::abs(s.pos.x - s.dest.x) < 1e-9 ||
                        std::abs(s.pos.y - s.dest.y) < 1e-9);
        }
    }
}

TEST(mrwp_test, stationary_final_leg_probability_is_one_half) {
    // Theorem 2's cross identity seen from the sampler's side.
    mobility::manhattan_random_waypoint model(kL);
    rng g{10};
    int final_leg = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
        final_leg += model.stationary_state(g).on_final_leg() ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(final_leg) / n, 0.5, 0.01);
}

TEST(rwp_test, trips_are_single_straight_legs) {
    mobility::random_waypoint model(kL);
    rng g{11};
    mobility::trip_state s;
    s.pos = {1, 1};
    model.begin_trip(s, g);
    EXPECT_EQ(s.leg, 1);
    EXPECT_EQ(s.waypoint, s.dest);
}

TEST(rwp_test, stationary_state_lies_on_segment) {
    mobility::random_waypoint model(kL);
    rng g{12};
    for (int i = 0; i < 1000; ++i) {
        const auto s = model.stationary_state(g);
        EXPECT_TRUE(s.pos.x >= 0 && s.pos.x <= kL && s.pos.y >= 0 && s.pos.y <= kL);
        EXPECT_EQ(s.leg, 1);
    }
}

TEST(random_walk_test, steps_bounded_by_rho) {
    const double rho = 5.0;
    mobility::random_walk model(kL, rho);
    rng g{13};
    mobility::trip_state s;
    s.pos = {50, 50};
    for (int i = 0; i < 1000; ++i) {
        model.begin_trip(s, g);
        ASSERT_LE(manhattan::geom::dist(s.pos, s.dest), rho + 1e-9);
        ASSERT_TRUE(s.dest.x >= 0 && s.dest.x <= kL && s.dest.y >= 0 && s.dest.y <= kL);
        s.pos = s.dest;
    }
}

TEST(random_walk_test, corner_position_still_terminates) {
    mobility::random_walk model(kL, 5.0);
    rng g{14};
    mobility::trip_state s;
    s.pos = {0, 0};
    for (int i = 0; i < 100; ++i) {
        model.begin_trip(s, g);
        ASSERT_TRUE(s.dest.x >= 0 && s.dest.y >= 0);
    }
}

TEST(random_walk_test, validates_rho) {
    EXPECT_THROW((void)mobility::random_walk(kL, 0.0), std::invalid_argument);
    EXPECT_THROW((void)mobility::random_walk(kL, kL * 2), std::invalid_argument);
}

TEST(random_direction_test, legs_bounded_and_inside) {
    const double max_leg = 20.0;
    mobility::random_direction model(kL, max_leg);
    rng g{15};
    mobility::trip_state s;
    s.pos = {50, 50};
    for (int i = 0; i < 1000; ++i) {
        model.begin_trip(s, g);
        ASSERT_LE(manhattan::geom::dist(s.pos, s.dest), max_leg + 1e-9);
        ASSERT_TRUE(s.dest.x >= -1e-12 && s.dest.x <= kL + 1e-12);
        ASSERT_TRUE(s.dest.y >= -1e-12 && s.dest.y <= kL + 1e-12);
        s.pos = s.dest;
    }
}

TEST(random_direction_test, border_start_never_escapes) {
    mobility::random_direction model(kL, 50.0);
    rng g{16};
    mobility::trip_state s;
    s.pos = {0, 0};
    for (int i = 0; i < 500; ++i) {
        model.begin_trip(s, g);
        ASSERT_TRUE(s.dest.x >= 0 && s.dest.x <= kL);
        ASSERT_TRUE(s.dest.y >= 0 && s.dest.y <= kL);
        s.pos = s.dest;
    }
}

TEST(static_model_test, never_moves) {
    auto model = std::make_shared<mobility::static_model>(kL);
    mobility::walker w(model, 10, 3.0, rng{17});
    const auto before = std::vector<vec2>(w.positions().begin(), w.positions().end());
    for (int i = 0; i < 10; ++i) {
        w.step();
    }
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(w.positions()[i], before[i]);
    }
}

TEST(walker_test, construction_validates) {
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(kL);
    EXPECT_THROW((void)mobility::walker(nullptr, 10, 1.0, rng{1}), std::invalid_argument);
    EXPECT_THROW((void)mobility::walker(model, 0, 1.0, rng{1}), std::invalid_argument);
    EXPECT_THROW((void)mobility::walker(model, 10, -1.0, rng{1}), std::invalid_argument);
}

TEST(walker_test, positions_track_agents) {
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(kL);
    mobility::walker w(model, 50, 1.0, rng{18});
    for (int i = 0; i < 20; ++i) {
        w.step();
    }
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(w.positions()[i], w.agent(i).pos);
    }
    EXPECT_EQ(w.steps_taken(), 20u);
}

TEST(walker_test, same_seed_reproduces_exactly) {
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(kL);
    mobility::walker a(model, 30, 1.5, rng{99});
    mobility::walker b(model, 30, 1.5, rng{99});
    for (int i = 0; i < 50; ++i) {
        a.step();
        b.step();
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.positions()[i], b.positions()[i]);
    }
}

TEST(walker_test, turn_counts_grow_with_time) {
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(kL);
    mobility::walker w(model, 20, 5.0, rng{20});
    std::uint64_t before = 0;
    for (const auto c : w.turn_counts()) {
        before += c;
    }
    for (int i = 0; i < 200; ++i) {
        w.step();
    }
    std::uint64_t after = 0;
    for (const auto c : w.turn_counts()) {
        after += c;
    }
    EXPECT_GT(after, before);
}

TEST(walker_test, agents_stay_inside_the_square) {
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(kL);
    mobility::walker w(model, 100, 2.0, rng{21});
    for (int i = 0; i < 200; ++i) {
        w.step();
        for (const vec2 p : w.positions()) {
            ASSERT_GE(p.x, -1e-9);
            ASSERT_LE(p.x, kL + 1e-9);
            ASSERT_GE(p.y, -1e-9);
            ASSERT_LE(p.y, kL + 1e-9);
        }
    }
}

TEST(walker_test, advance_time_matches_total_distance_budget) {
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(kL);
    mobility::walker w(model, 10, 2.0, rng{22});
    EXPECT_THROW((void)w.advance_time(-1.0), std::invalid_argument);
    const auto before = std::vector<vec2>(w.positions().begin(), w.positions().end());
    w.advance_time(3.0);  // budget 6.0 per agent
    for (std::size_t i = 0; i < w.size(); ++i) {
        ASSERT_LE(manhattan::geom::manhattan_dist(before[i], w.positions()[i]), 6.0 + 1e-9);
    }
}

TEST(walker_test, set_agent_overrides_state) {
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(kL);
    mobility::walker w(model, 5, 1.0, rng{23});
    mobility::trip_state s;
    s.pos = {1, 2};
    s.waypoint = {1, 2};
    s.dest = {1, 2};
    s.leg = 1;
    w.set_agent(3, s);
    EXPECT_EQ(w.positions()[3], (vec2{1, 2}));
    EXPECT_THROW((void)w.set_agent(99, s), std::out_of_range);
}

TEST(walker_test, uniform_fresh_start_supported) {
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(kL);
    mobility::walker w(model, 40, 1.0, rng{24}, mobility::start_mode::uniform_fresh);
    EXPECT_EQ(w.size(), 40u);
    for (const vec2 p : w.positions()) {
        ASSERT_TRUE(p.x >= 0 && p.x <= kL && p.y >= 0 && p.y <= kL);
    }
}

TEST(factory_test, parse_round_trips) {
    using mobility::model_kind;
    EXPECT_EQ(mobility::parse_model_kind("mrwp"), model_kind::mrwp);
    EXPECT_EQ(mobility::parse_model_kind("rwp"), model_kind::rwp);
    EXPECT_EQ(mobility::parse_model_kind("random_walk"), model_kind::random_walk);
    EXPECT_EQ(mobility::parse_model_kind("random_direction"), model_kind::random_direction);
    EXPECT_EQ(mobility::parse_model_kind("static"), model_kind::static_agents);
    EXPECT_THROW((void)mobility::parse_model_kind("levy"), std::invalid_argument);
}

TEST(factory_test, constructs_each_kind_with_expected_name) {
    using mobility::model_kind;
    EXPECT_EQ(mobility::make_model(model_kind::mrwp, kL)->name(), "mrwp");
    EXPECT_EQ(mobility::make_model(model_kind::rwp, kL)->name(), "rwp");
    EXPECT_EQ(mobility::make_model(model_kind::random_walk, kL)->name(), "random_walk");
    EXPECT_EQ(mobility::make_model(model_kind::random_direction, kL)->name(),
              "random_direction");
    EXPECT_EQ(mobility::make_model(model_kind::static_agents, kL)->name(), "static");
}

TEST(factory_test, default_options_scale_with_side) {
    using mobility::model_kind;
    const auto walk = mobility::make_model(model_kind::random_walk, kL);
    const auto* as_walk = dynamic_cast<const mobility::random_walk*>(walk.get());
    ASSERT_NE(as_walk, nullptr);
    EXPECT_DOUBLE_EQ(as_walk->step_radius(), kL / 10.0);

    mobility::model_options opts;
    opts.walk_step_radius = 2.5;
    const auto walk2 = mobility::make_model(model_kind::random_walk, kL, opts);
    EXPECT_DOUBLE_EQ(dynamic_cast<const mobility::random_walk*>(walk2.get())->step_radius(),
                     2.5);
}

TEST(model_test, side_must_be_positive) {
    EXPECT_THROW((void)mobility::manhattan_random_waypoint(-1.0), std::invalid_argument);
    EXPECT_THROW((void)mobility::random_waypoint(0.0), std::invalid_argument);
}

TEST(advance_test, deterministic_plus_resume_equals_plain_advance) {
    // The two-phase split behind walker's parallel step: the RNG-free prefix
    // followed by a serial resume must land on the same state, events and
    // generator position as one advance() call — for distances spanning
    // several trips as well as mid-leg stops.
    const mobility::manhattan_random_waypoint model(50.0);
    for (const double distance : {0.5, 3.0, 40.0, 250.0}) {
        manhattan::rng::rng seed_gen(31);
        const mobility::trip_state start = model.stationary_state(seed_gen);
        manhattan::rng::rng gen_a = seed_gen;  // identical generator states
        manhattan::rng::rng gen_b = seed_gen;
        mobility::trip_state a = start;
        mobility::trip_state b = start;
        for (int step = 0; step < 25; ++step) {
            const auto ev_a = mobility::advance(model, a, distance, gen_a);
            const auto partial = mobility::advance_deterministic(model, b, distance);
            const auto resumed = mobility::advance_resume(model, b, partial, gen_b);
            EXPECT_EQ(ev_a.turns, partial.events.turns + resumed.turns);
            EXPECT_EQ(ev_a.arrivals, partial.events.arrivals + resumed.arrivals);
            EXPECT_EQ(a.pos.x, b.pos.x);
            EXPECT_EQ(a.pos.y, b.pos.y);
            EXPECT_EQ(a.waypoint.x, b.waypoint.x);
            EXPECT_EQ(a.dest.x, b.dest.x);
            EXPECT_EQ(a.leg, b.leg);
            EXPECT_EQ(gen_a.bits(), gen_b.bits());  // generators stay in lockstep
        }
    }
}

TEST(walker_test, parallel_step_is_bit_identical_to_serial_step) {
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(40.0);
    mobility::walker serial(model, 500, 1.5, manhattan::rng::rng{62});
    for (const std::size_t threads : {1u, 2u, 8u}) {
        manhattan::engine::thread_pool pool(threads);
        mobility::walker parallel(model, 500, 1.5, manhattan::rng::rng{62});
        // Fresh walkers from the same seed start identical; advance the
        // serial copy only on the first thread-count iteration.
        mobility::walker reference(model, 500, 1.5, manhattan::rng::rng{62});
        for (int step = 0; step < 40; ++step) {
            reference.step();
            parallel.step(pool.executor());
        }
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const auto ra = reference.positions();
        const auto rb = parallel.positions();
        ASSERT_EQ(ra.size(), rb.size());
        for (std::size_t i = 0; i < ra.size(); ++i) {
            EXPECT_EQ(ra[i].x, rb[i].x) << "agent " << i;
            EXPECT_EQ(ra[i].y, rb[i].y) << "agent " << i;
        }
        EXPECT_EQ(std::vector<std::uint64_t>(reference.turn_counts().begin(),
                                             reference.turn_counts().end()),
                  std::vector<std::uint64_t>(parallel.turn_counts().begin(),
                                             parallel.turn_counts().end()));
        EXPECT_EQ(std::vector<std::uint64_t>(reference.arrival_counts().begin(),
                                             reference.arrival_counts().end()),
                  std::vector<std::uint64_t>(parallel.arrival_counts().begin(),
                                             parallel.arrival_counts().end()));
        EXPECT_EQ(reference.steps_taken(), parallel.steps_taken());
    }
}

}  // namespace
