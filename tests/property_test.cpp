// Property-based tests exploiting the simulator's deterministic coupling:
// with a fixed seed, two runs differing in ONE parameter share the exact same
// agent trajectories (flooding consumes no randomness), so structural
// dominance properties hold *pointwise per agent*, not just in expectation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/flooding.h"
#include "core/params.h"
#include "graph/temporal.h"
#include "mobility/factory.h"
#include "mobility/trace.h"
#include "mobility/walker.h"

namespace {

namespace core = manhattan::core;
namespace graph = manhattan::graph;
namespace mobility = manhattan::mobility;
using manhattan::rng::rng;

constexpr double kSide = 70.0;
constexpr std::size_t kAgents = 400;

core::flood_result run_flood(mobility::model_kind kind, std::uint64_t seed, double radius,
                             core::propagation mode, double speed = 1.0) {
    const auto model = mobility::make_model(kind, kSide);
    mobility::walker w(model, kAgents, speed, rng{seed});
    core::flood_config cfg;
    cfg.mode = mode;
    cfg.max_steps = 30'000;
    core::flooding_sim sim(std::move(w), radius, cfg);
    return sim.run();
}

struct property_case {
    mobility::model_kind kind;
    std::uint64_t seed;
};

class coupling_sweep : public ::testing::TestWithParam<property_case> {};

TEST_P(coupling_sweep, flooding_is_pointwise_monotone_in_radius) {
    // Same trajectories, larger radius: every agent is informed no later.
    const auto [kind, seed] = GetParam();
    const auto small = run_flood(kind, seed, 5.0, core::propagation::one_hop);
    const auto large = run_flood(kind, seed, 8.0, core::propagation::one_hop);
    ASSERT_TRUE(small.completed);
    ASSERT_TRUE(large.completed);
    EXPECT_LE(large.flooding_time, small.flooding_time);
    for (std::size_t i = 0; i < kAgents; ++i) {
        ASSERT_LE(large.informed_at[i], small.informed_at[i]) << "agent " << i;
    }
}

TEST_P(coupling_sweep, component_mode_pointwise_dominates_one_hop) {
    // Informing a whole component per step is a superset of one hop per step
    // at every time, so per-agent informing steps dominate pointwise.
    const auto [kind, seed] = GetParam();
    const auto hop = run_flood(kind, seed, 6.0, core::propagation::one_hop);
    const auto comp = run_flood(kind, seed, 6.0, core::propagation::per_component);
    ASSERT_TRUE(hop.completed);
    ASSERT_TRUE(comp.completed);
    for (std::size_t i = 0; i < kAgents; ++i) {
        ASSERT_LE(comp.informed_at[i], hop.informed_at[i]) << "agent " << i;
    }
}

TEST_P(coupling_sweep, temporal_oracle_agrees_for_every_model) {
    // The independent time-respecting-reachability oracle reproduces the
    // engine's informing steps exactly, for every mobility model.
    const auto [kind, seed] = GetParam();
    const double radius = 6.0;
    const auto model = mobility::make_model(kind, kSide);

    core::flood_config cfg;
    cfg.max_steps = 30'000;
    core::flooding_sim sim(mobility::walker(model, kAgents, 1.0, rng{seed}), radius, cfg);
    mobility::trajectory_recorder rec(kAgents);
    rec.capture(sim.agents());
    while (!sim.all_informed() && sim.steps_taken() < cfg.max_steps) {
        (void)sim.step();
        rec.capture(sim.agents());
    }
    ASSERT_TRUE(sim.all_informed());

    const auto oracle = graph::temporal_flood(rec, radius, kSide, cfg.source);
    const auto reference = run_flood(kind, seed, radius, core::propagation::one_hop);
    for (std::size_t i = 0; i < kAgents; ++i) {
        ASSERT_EQ(reference.informed_at[i], oracle.reached_at[i]) << "agent " << i;
    }
}

TEST_P(coupling_sweep, informed_at_zero_is_exactly_the_source) {
    const auto [kind, seed] = GetParam();
    const auto result = run_flood(kind, seed, 6.0, core::propagation::one_hop);
    std::size_t at_zero = 0;
    for (const auto at : result.informed_at) {
        at_zero += at == 0 ? 1 : 0;
    }
    EXPECT_EQ(at_zero, 1u);
    EXPECT_EQ(result.informed_at[0], 0u);
}

TEST_P(coupling_sweep, every_informing_step_has_a_witness_in_range) {
    // Replay the recorded trajectory and verify the protocol's local rule:
    // every agent informed at step t had some agent informed before t within
    // R at frame t (soundness of every single informing event).
    const auto [kind, seed] = GetParam();
    const double radius = 6.0;
    const auto model = mobility::make_model(kind, kSide);

    core::flood_config cfg;
    cfg.max_steps = 30'000;
    core::flooding_sim sim(mobility::walker(model, kAgents, 1.0, rng{seed}), radius, cfg);
    mobility::trajectory_recorder rec(kAgents);
    rec.capture(sim.agents());
    while (!sim.all_informed() && sim.steps_taken() < cfg.max_steps) {
        (void)sim.step();
        rec.capture(sim.agents());
    }
    ASSERT_TRUE(sim.all_informed());
    const auto reference = run_flood(kind, seed, radius, core::propagation::one_hop);

    for (std::size_t i = 0; i < kAgents; ++i) {
        const auto t = reference.informed_at[i];
        if (t == 0) {
            continue;  // source
        }
        const auto frame = rec.frame(t);
        bool witness = false;
        for (std::size_t j = 0; j < kAgents && !witness; ++j) {
            witness = j != i && reference.informed_at[j] < t &&
                      manhattan::geom::dist(frame[i], frame[j]) <= radius;
        }
        ASSERT_TRUE(witness) << "agent " << i << " informed at step " << t
                             << " without a transmitter in range";
    }
}

INSTANTIATE_TEST_SUITE_P(
    models_and_seeds, coupling_sweep,
    ::testing::Values(property_case{mobility::model_kind::mrwp, 1},
                      property_case{mobility::model_kind::mrwp, 2},
                      property_case{mobility::model_kind::mrwp, 3},
                      property_case{mobility::model_kind::rwp, 1},
                      property_case{mobility::model_kind::rwp, 2},
                      property_case{mobility::model_kind::random_walk, 1},
                      property_case{mobility::model_kind::random_direction, 1}));

// ---------------------------------------------------------------------------
// Partition invariants across a parameter grid.
// ---------------------------------------------------------------------------

struct partition_case {
    std::size_t n;
    double c1;
};

class partition_sweep : public ::testing::TestWithParam<partition_case> {};

TEST_P(partition_sweep, masses_always_sum_to_one) {
    const auto [n, c1] = GetParam();
    const double side = std::sqrt(static_cast<double>(n));
    const double radius = c1 * std::sqrt(std::log(static_cast<double>(n)));
    const core::cell_partition cp(n, side, radius);
    double total = 0.0;
    for (std::size_t id = 0; id < cp.grid().cell_count(); ++id) {
        total += cp.cell_mass(id);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(partition_sweep, central_zone_is_row_column_convex) {
    // The Central Zone's rows are contiguous intervals: the density along a
    // row is concave, so the super-threshold set cannot have holes.
    const auto [n, c1] = GetParam();
    const double side = std::sqrt(static_cast<double>(n));
    const double radius = c1 * std::sqrt(std::log(static_cast<double>(n)));
    const core::cell_partition cp(n, side, radius);
    const auto m = cp.grid().cells_per_side();
    for (std::int32_t cy = 0; cy < m; ++cy) {
        int transitions = 0;
        bool prev = false;
        for (std::int32_t cx = 0; cx < m; ++cx) {
            const bool cur =
                cp.zone_of_cell(cp.grid().id_of({cx, cy})) == core::zone::central;
            transitions += (cur != prev) ? 1 : 0;
            prev = cur;
        }
        transitions += prev ? 1 : 0;
        ASSERT_LE(transitions, 2) << "row " << cy << " has a hole in the Central Zone";
    }
}

TEST_P(partition_sweep, suburb_diameter_decreases_with_radius) {
    const auto [n, c1] = GetParam();
    const double side = std::sqrt(static_cast<double>(n));
    const double radius = c1 * std::sqrt(std::log(static_cast<double>(n)));
    const core::cell_partition cp(n, side, radius);
    const core::cell_partition bigger(n, side, radius * 1.4);
    EXPECT_LE(bigger.suburb_diameter(), cp.suburb_diameter());
    EXPECT_LE(bigger.suburb_cell_count(), cp.suburb_cell_count());
}

INSTANTIATE_TEST_SUITE_P(grid, partition_sweep,
                         ::testing::Values(partition_case{2000, 2.0},
                                           partition_case{2000, 4.0},
                                           partition_case{10'000, 2.0},
                                           partition_case{10'000, 3.0},
                                           partition_case{50'000, 2.0},
                                           partition_case{50'000, 6.0}));

}  // namespace
