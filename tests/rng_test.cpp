// Unit tests for the rng module: engine determinism, stream splitting, and
// the distributional correctness of every sampler the simulation relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rng/rng.h"
#include "rng/splitmix64.h"
#include "rng/xoshiro256.h"
#include "stats/gof.h"

namespace {

using manhattan::rng::rng;
using manhattan::rng::splitmix64;
using manhattan::rng::xoshiro256pp;

TEST(splitmix64_test, deterministic_for_equal_seeds) {
    splitmix64 a{42};
    splitmix64 b{42};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(splitmix64_test, different_seeds_diverge) {
    splitmix64 a{1};
    splitmix64 b{2};
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += (a() == b()) ? 1 : 0;
    }
    EXPECT_EQ(equal, 0);
}

TEST(splitmix64_test, nonzero_output_from_zero_seed) {
    splitmix64 a{0};
    EXPECT_NE(a(), 0u);
}

TEST(xoshiro_test, deterministic_for_equal_seeds) {
    xoshiro256pp a{7};
    xoshiro256pp b{7};
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a(), b());
    }
}

TEST(xoshiro_test, long_jump_decorrelates_stream) {
    xoshiro256pp a{7};
    xoshiro256pp b{7};
    b.long_jump();
    int equal = 0;
    for (int i = 0; i < 256; ++i) {
        equal += (a() == b()) ? 1 : 0;
    }
    EXPECT_EQ(equal, 0);
}

TEST(xoshiro_test, no_short_cycle_in_first_million) {
    xoshiro256pp a{3};
    const std::uint64_t first = a();
    for (int i = 0; i < 1'000'000; ++i) {
        if (a() == first) {
            // A single value collision is fine; a full state cycle would
            // repeat deterministically — check the next draw too.
            xoshiro256pp fresh{3};
            (void)fresh();
            ASSERT_NE(a(), fresh());
            return;
        }
    }
    SUCCEED();
}

TEST(rng_test, uniform01_range_and_moments) {
    rng g{12345};
    const int n = 200'000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double u = g.uniform01();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
        sum_sq += u * u;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.005);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(rng_test, uniform_respects_bounds) {
    rng g{5};
    for (int i = 0; i < 10'000; ++i) {
        const double u = g.uniform(-3.5, 12.25);
        ASSERT_GE(u, -3.5);
        ASSERT_LT(u, 12.25);
    }
}

TEST(rng_test, uniform_index_bounds) {
    rng g{99};
    for (int i = 0; i < 10'000; ++i) {
        ASSERT_LT(g.uniform_index(17), 17u);
    }
}

TEST(rng_test, uniform_index_one_is_always_zero) {
    rng g{99};
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(g.uniform_index(1), 0u);
    }
}

TEST(rng_test, uniform_index_is_unbiased_chi_square) {
    rng g{2024};
    constexpr std::uint64_t buckets = 10;
    std::vector<std::uint64_t> counts(buckets, 0);
    const int n = 500'000;
    for (int i = 0; i < n; ++i) {
        ++counts[g.uniform_index(buckets)];
    }
    const std::vector<double> expected(buckets, 1.0 / buckets);
    const double stat = manhattan::stats::chi_square_statistic(counts, expected);
    EXPECT_LT(stat, manhattan::stats::chi_square_critical(buckets - 1));
}

TEST(rng_test, bernoulli_edge_cases) {
    rng g{1};
    for (int i = 0; i < 1000; ++i) {
        ASSERT_FALSE(g.bernoulli(0.0));
        ASSERT_TRUE(g.bernoulli(1.0));
    }
}

TEST(rng_test, bernoulli_frequency) {
    rng g{8};
    const int n = 200'000;
    int hits = 0;
    for (int i = 0; i < n; ++i) {
        hits += g.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.005);
}

TEST(rng_test, coin_is_fair) {
    rng g{77};
    const int n = 200'000;
    int heads = 0;
    for (int i = 0; i < n; ++i) {
        heads += g.coin() ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.005);
}

TEST(rng_test, beta22_matches_cdf) {
    // Beta(2,2) cdf on [0,1] is 3u^2 - 2u^3.
    rng g{31337};
    std::vector<double> sample;
    const int n = 50'000;
    sample.reserve(n);
    for (int i = 0; i < n; ++i) {
        sample.push_back(g.beta22());
    }
    const double ks = manhattan::stats::ks_statistic(
        sample, [](double u) { return u <= 0 ? 0.0 : u >= 1 ? 1.0 : 3 * u * u - 2 * u * u * u; });
    EXPECT_LT(ks, manhattan::stats::ks_critical(n));
}

TEST(rng_test, beta22_moments) {
    rng g{4};
    const int n = 200'000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double u = g.beta22();
        sum += u;
        sum_sq += u * u;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 0.5, 0.005);
    EXPECT_NEAR(sum_sq / n - mean * mean, 0.05, 0.003);  // Var Beta(2,2) = 1/20
}

TEST(rng_test, exponential_mean) {
    rng g{6};
    const int n = 200'000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double e = g.exponential(2.0);
        ASSERT_GE(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(rng_test, split_streams_are_distinct_and_deterministic) {
    rng parent{100};
    rng child = parent.split();

    rng parent2{100};
    rng child2 = parent2.split();

    // Determinism: the same construction yields the same streams.
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(child.bits(), child2.bits());
        ASSERT_EQ(parent.bits(), parent2.bits());
    }
    // Distinctness: child and parent disagree.
    rng p3{100};
    rng c3 = p3.split();
    int equal = 0;
    for (int i = 0; i < 256; ++i) {
        equal += (p3.bits() == c3.bits()) ? 1 : 0;
    }
    EXPECT_EQ(equal, 0);
}

class rng_seed_sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(rng_seed_sweep, uniform01_mean_is_half_for_every_seed) {
    rng g{GetParam()};
    const int n = 100'000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += g.uniform01();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST_P(rng_seed_sweep, beta22_median_of_three_stays_in_unit_interval) {
    rng g{GetParam()};
    for (int i = 0; i < 10'000; ++i) {
        const double u = g.beta22();
        ASSERT_GE(u, 0.0);
        ASSERT_LE(u, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, rng_seed_sweep,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull, 0xdeadbeefull,
                                           0xffffffffffffffffull));

}  // namespace
