// Tests of the scenario driver — the declarative layer every bench uses.
#include <gtest/gtest.h>

#include <cmath>

#include "core/scenario.h"

namespace {

namespace core = manhattan::core;

core::scenario small_scenario() {
    core::scenario sc;
    const std::size_t n = 1500;
    sc.params = core::net_params::standard_case(
        n, 3.0 * std::sqrt(std::log(static_cast<double>(n))), 1.0);
    sc.seed = 3;
    sc.max_steps = 50'000;
    return sc;
}

TEST(net_params_test, validation) {
    core::net_params p{0, 1.0, 1.0, 1.0};
    EXPECT_THROW((void)p.validate(), std::invalid_argument);
    p = {10, -1.0, 1.0, 1.0};
    EXPECT_THROW((void)p.validate(), std::invalid_argument);
    p = {10, 1.0, 0.0, 1.0};
    EXPECT_THROW((void)p.validate(), std::invalid_argument);
    p = {10, 1.0, 1.0, 0.0};  // zero speed is legal (the paper's v = 0 case)
    EXPECT_NO_THROW(p.validate());
}

TEST(net_params_test, standard_case_sets_side_to_sqrt_n) {
    const auto p = core::net_params::standard_case(400, 5.0, 1.0);
    EXPECT_DOUBLE_EQ(p.side, 20.0);
    EXPECT_EQ(p.n, 400u);
}

TEST(paper_constants_test, closed_forms) {
    EXPECT_NEAR(core::paper::speed_bound(9.7082), 1.0, 1e-4);  // 3(1+sqrt5) ~ 9.708
    EXPECT_GT(core::paper::radius_threshold(100.0, 10'000), 0.0);
    EXPECT_GT(core::paper::large_radius_threshold(100.0, 10'000),
              core::paper::radius_threshold(100.0, 10'000, 2.0));
    EXPECT_DOUBLE_EQ(core::paper::meeting_radius(8.0), 6.0);
    EXPECT_DOUBLE_EQ(core::paper::central_zone_flood_bound(100.0, 10.0), 180.0);
    EXPECT_GT(core::paper::suburb_rescue_window(10.0, 1.0), 10.0);
}

TEST(paper_constants_test, theorem3_bound_shape) {
    // The bound decreases in R and decreases in v.
    core::net_params p{10'000, 100.0, 5.0, 0.5};
    const double base = core::paper::theorem3_bound(p);
    p.radius = 10.0;
    EXPECT_LT(core::paper::theorem3_bound(p), base);
    p.radius = 5.0;
    p.speed = 1.0;
    EXPECT_LT(core::paper::theorem3_bound(p), base);
    p.speed = 0.0;
    EXPECT_TRUE(std::isinf(core::paper::theorem3_bound(p)));
}

TEST(paper_constants_test, turn_bound_grows_with_window) {
    // Longer windows admit more turns: ln(L/(v tau)) shrinks as tau grows,
    // so the bound 4 ln n / ln(L/(v tau)) increases.
    const double b_small = core::paper::turn_bound(100.0, 1.0, 5.0, 10'000);
    const double b_large = core::paper::turn_bound(100.0, 1.0, 20.0, 10'000);
    EXPECT_LT(b_small, b_large);
}

TEST(scenario_test, completes_and_reports_metrics) {
    const auto out = core::run_scenario(small_scenario());
    EXPECT_TRUE(out.flood.completed);
    EXPECT_GT(out.flood.flooding_time, 0u);
    EXPECT_GT(out.cell_side, 0.0);
    EXPECT_GT(out.central_cells, 0u);
    EXPECT_GT(out.wall_seconds, 0.0);
}

TEST(scenario_test, deterministic_per_seed) {
    const auto a = core::run_scenario(small_scenario());
    const auto b = core::run_scenario(small_scenario());
    EXPECT_EQ(a.flood.flooding_time, b.flood.flooding_time);
    EXPECT_EQ(a.source_agent, b.source_agent);
}

TEST(scenario_test, different_seeds_differ) {
    auto sc = small_scenario();
    const auto a = core::run_scenario(sc);
    sc.seed = 12345;
    const auto b = core::run_scenario(sc);
    // Flooding times can coincide; positions of sources almost surely differ.
    EXPECT_TRUE(a.flood.flooding_time != b.flood.flooding_time ||
                a.source_agent != b.source_agent);
}

TEST(scenario_test, source_placement_center_and_corner) {
    auto sc = small_scenario();
    sc.source = core::source_placement::center_most;
    const auto center = core::run_scenario(sc);
    sc.source = core::source_placement::corner_most;
    const auto corner = core::run_scenario(sc);
    EXPECT_TRUE(center.flood.completed);
    EXPECT_TRUE(corner.flood.completed);
}

TEST(scenario_test, max_steps_cutoff_reported_incomplete) {
    auto sc = small_scenario();
    sc.max_steps = 1;
    const auto out = core::run_scenario(sc);
    EXPECT_FALSE(out.flood.completed);
    EXPECT_EQ(out.flood.flooding_time, 1u);
}

TEST(scenario_test, partition_can_be_disabled) {
    auto sc = small_scenario();
    sc.with_cell_partition = false;
    const auto out = core::run_scenario(sc);
    EXPECT_DOUBLE_EQ(out.cell_side, 0.0);
    EXPECT_FALSE(out.flood.central_zone_informed_step.has_value());
}

TEST(scenario_test, out_of_regime_radius_degrades_gracefully) {
    // R = 18 on a side-10 square: Ineq. 6 has no integer solution
    // ([sqrt5 L/R, (1+sqrt5) L/R] = [1.24, 1.80] contains no integer), so no
    // partition is built — but the scenario must still run, and R > sqrt(2) L
    // floods everyone in the single first transmission step.
    core::scenario sc;
    sc.params = {300, 10.0, 18.0, 1.0};
    sc.max_steps = 100;
    const auto out = core::run_scenario(sc);
    EXPECT_TRUE(out.flood.completed);
    EXPECT_EQ(out.flood.flooding_time, 1u);
    EXPECT_DOUBLE_EQ(out.cell_side, 0.0);
    EXPECT_FALSE(out.flood.central_zone_informed_step.has_value());
}

TEST(scenario_test, baseline_models_run) {
    for (const auto kind :
         {manhattan::mobility::model_kind::rwp, manhattan::mobility::model_kind::random_walk,
          manhattan::mobility::model_kind::random_direction}) {
        auto sc = small_scenario();
        sc.model = kind;
        const auto out = core::run_scenario(sc);
        EXPECT_TRUE(out.flood.completed) << static_cast<int>(kind);
    }
}

TEST(scenario_test, flooding_times_returns_reps_and_is_deterministic) {
    auto sc = small_scenario();
    const auto a = core::flooding_times(sc, 3);
    const auto b = core::flooding_times(sc, 3);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a, b);
}

TEST(scenario_test, record_timeline_flag) {
    auto sc = small_scenario();
    sc.record_timeline = true;
    const auto out = core::run_scenario(sc);
    EXPECT_FALSE(out.flood.timeline.empty());
    sc.record_timeline = false;
    const auto out2 = core::run_scenario(sc);
    EXPECT_TRUE(out2.flood.timeline.empty());
}

TEST(scenario_test, warmup_runs_before_flooding) {
    auto sc = small_scenario();
    sc.stationary_start = false;
    sc.warmup_time = 100.0;
    const auto out = core::run_scenario(sc);
    EXPECT_TRUE(out.flood.completed);
}

}  // namespace
