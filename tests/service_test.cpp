// Service tests: the simulation-as-a-service stack (src/service/). Covers
// the fingerprint-keyed result cache (round trip, integrity re-verification,
// LRU eviction), the admission controller (queue bound, per-client cap, run
// slots, cancellation), and the daemon end-to-end over a real AF_UNIX socket:
// byte-identical streamed rows vs a direct run_sweep, the cache-hit replay
// with zero fresh pool tasks, the in-flight dedup rendezvous, busy shedding,
// queued-job cancellation, and crash-ledger resume. The wire format itself
// is covered by wire_test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/fault.h"
#include "engine/manifest.h"
#include "engine/sink.h"
#include "engine/sweep.h"
#include "service/admission.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/result_cache.h"
#include "util/telemetry.h"

namespace {

namespace core = manhattan::core;
namespace engine = manhattan::engine;
namespace fault = manhattan::engine::fault;
namespace service = manhattan::service;
namespace util = manhattan::util;
namespace fs = std::filesystem;

/// Disarm the fault registry on scope exit, even when an assertion fails.
struct fault_guard {
    fault_guard() { fault::configure(""); }
    ~fault_guard() { fault::configure(""); }
};

/// Scratch directory in the test working directory, removed on exit. Also
/// the daemon's home: socket, cache and work dir all live under it (the
/// relative path keeps us far from the AF_UNIX sun_path limit).
class scratch_dir {
 public:
    explicit scratch_dir(const std::string& name) : path_("service_test_" + name) {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~scratch_dir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
    std::string path_;
};

core::scenario small_scenario() {
    core::scenario sc;
    const std::size_t n = 1200;
    sc.params = core::net_params::standard_case(
        n, 3.0 * std::sqrt(std::log(static_cast<double>(n))), 1.0);
    sc.seed = 42;
    sc.max_steps = 50'000;
    return sc;
}

/// Two grid points x two replicas = 4 (point, replica) pairs.
engine::sweep_spec small_spec() {
    engine::sweep_spec spec;
    spec.base = small_scenario();
    spec.repetitions = 2;
    spec.c1 = {2.5, 3.0};
    return spec;
}

/// The reference every daemon-served sweep must reproduce byte-for-byte: an
/// uninterrupted in-process run_sweep rendered through the same csv sink.
const std::string& reference_csv() {
    static const std::string csv = [] {
        std::ostringstream out;
        engine::csv_sink sink(out);
        engine::result_sink* sinks[] = {&sink};
        (void)engine::run_sweep(small_spec(), {.threads = 2}, sinks);
        return out.str();
    }();
    return csv;
}

/// A complete manifest for \p spec, produced by the real checkpoint path.
engine::run_manifest complete_manifest(const engine::sweep_spec& spec,
                                       const std::string& scratch) {
    const std::string path = scratch + "/ref.manifest";
    (void)engine::run_sweep(spec, {.threads = 2}, {}, {.manifest_path = path});
    engine::run_manifest m = engine::load_manifest(path);
    fs::remove(path);
    return m;
}

service::daemon_config daemon_config_for(const scratch_dir& dir) {
    service::daemon_config config;
    config.socket_path = dir.path() + "/d.sock";
    config.cache_dir = dir.path() + "/cache";
    config.work_dir = dir.path() + "/work";
    config.threads = 2;
    return config;
}

std::string job_hex(const engine::sweep_spec& spec) {
    return engine::fingerprint_hex(engine::sweep_fingerprint(spec));
}

std::string submit_csv(const std::string& socket, const engine::sweep_spec& spec,
                       service::submit_outcome& outcome,
                       const std::string& client_id = "test") {
    std::ostringstream out;
    engine::csv_sink sink(out);
    engine::result_sink* sinks[] = {&sink};
    service::client c(socket);
    outcome = c.submit(spec, client_id, sinks);
    sink.finish();
    return out.str();
}

/// Poll the daemon until \p job reports \p status (or fail after ~5 s).
void await_status(const std::string& socket, const std::string& job,
                  const std::string& status) {
    service::client c(socket);
    for (int i = 0; i < 1000; ++i) {
        const service::json_value response = c.status(job);
        if (service::str_field(response, "status") == status) {
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{5});
    }
    FAIL() << "job " << job << " never reached status '" << status << "'";
}

std::uint64_t counter_value(engine::metrics_registry& registry, const std::string& name) {
    return registry.get_counter(name).value();
}

// ----------------------------------------------------------- result cache ---

TEST(service_test, cache_store_load_round_trips_and_counts) {
    util::telemetry::scoped_enable telemetry;
    scratch_dir dir("cache_roundtrip");
    engine::metrics_registry metrics;
    service::result_cache cache({.dir = dir.path() + "/cache"}, &metrics);

    const engine::sweep_spec spec = small_spec();
    const engine::run_manifest stored = complete_manifest(spec, dir.path());
    cache.store(stored);
    EXPECT_TRUE(fs::exists(cache.entry_path(stored.fingerprint)));

    const std::optional<engine::run_manifest> hit = cache.load(stored.fingerprint);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, stored);

    EXPECT_FALSE(cache.load(stored.fingerprint + 1).has_value());
    EXPECT_EQ(counter_value(metrics, "cache.stores"), 1u);
    EXPECT_EQ(counter_value(metrics, "cache.hits"), 1u);
    EXPECT_EQ(counter_value(metrics, "cache.misses"), 1u);
}

TEST(service_test, cache_refuses_partial_manifests) {
    scratch_dir dir("cache_partial");
    service::result_cache cache({.dir = dir.path() + "/cache"});
    engine::run_manifest partial = complete_manifest(small_spec(), dir.path());
    partial.records.pop_back();
    EXPECT_THROW(cache.store(partial), std::invalid_argument);
}

TEST(service_test, cache_unlinks_entries_that_fail_integrity_checks) {
    util::telemetry::scoped_enable telemetry;
    scratch_dir dir("cache_integrity");
    engine::metrics_registry metrics;
    service::result_cache cache({.dir = dir.path() + "/cache"}, &metrics);
    const engine::run_manifest stored = complete_manifest(small_spec(), dir.path());

    // Truncated entry: miss, and the file is gone afterwards.
    cache.store(stored);
    const std::string path = cache.entry_path(stored.fingerprint);
    {
        const std::string text = engine::serialize_manifest(stored);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    EXPECT_FALSE(cache.load(stored.fingerprint).has_value());
    EXPECT_FALSE(fs::exists(path));

    // Misnamed entry (valid manifest under the wrong key): never served.
    const std::string wrong = cache.entry_path(stored.fingerprint + 1);
    engine::save_manifest(stored, wrong);
    EXPECT_FALSE(cache.load(stored.fingerprint + 1).has_value());
    EXPECT_FALSE(fs::exists(wrong));
}

TEST(service_test, cache_evicts_least_recently_used_entries) {
    util::telemetry::scoped_enable telemetry;
    scratch_dir dir("cache_lru");
    engine::metrics_registry metrics;
    service::result_cache cache({.dir = dir.path() + "/cache", .max_entries = 2},
                                &metrics);

    // Three distinct sweeps (the seed feeds the fingerprint).
    engine::sweep_spec spec = small_spec();
    std::vector<engine::run_manifest> manifests;
    for (std::uint64_t seed : {42u, 43u, 44u}) {
        spec.base.seed = seed;
        manifests.push_back(complete_manifest(spec, dir.path()));
    }

    cache.store(manifests[0]);
    cache.store(manifests[1]);
    // Make entry 0 unambiguously the LRU victim (mtime granularity).
    fs::last_write_time(cache.entry_path(manifests[0].fingerprint),
                        fs::file_time_type::clock::now() - std::chrono::hours(1));
    cache.store(manifests[2]);

    EXPECT_FALSE(fs::exists(cache.entry_path(manifests[0].fingerprint)));
    EXPECT_TRUE(fs::exists(cache.entry_path(manifests[1].fingerprint)));
    EXPECT_TRUE(fs::exists(cache.entry_path(manifests[2].fingerprint)));
    EXPECT_EQ(counter_value(metrics, "cache.evictions"), 1u);
}

// ------------------------------------------------------ admission control ---

TEST(service_test, admission_sheds_over_queue_and_per_client_bounds) {
    util::telemetry::scoped_enable telemetry;
    engine::metrics_registry metrics;
    service::admission_controller admission(
        {.max_queue = 2, .max_running = 1, .per_client_inflight = 1}, &metrics);

    auto a = admission.admit("alice");
    EXPECT_THROW((void)admission.admit("alice"), service::busy_error);  // client cap
    auto b = admission.admit("bob");
    EXPECT_THROW((void)admission.admit("carol"), service::busy_error);  // queue bound
    EXPECT_EQ(admission.queued(), 2u);

    a.reset();  // releasing a ticket frees both bounds
    std::unique_ptr<service::admission_ticket> c;
    EXPECT_NO_THROW(c = admission.admit("carol"));
    EXPECT_EQ(counter_value(metrics, "admission.shed"), 2u);
}

TEST(service_test, admission_run_slots_hand_over_and_cancel_withdraws) {
    service::admission_controller admission(
        {.max_queue = 4, .max_running = 1, .per_client_inflight = 4});

    auto runner = admission.admit("a");
    ASSERT_TRUE(runner->acquire_run_slot());
    EXPECT_EQ(admission.running(), 1u);

    // A queued ticket blocks until the running one releases...
    auto waiter = admission.admit("a");
    std::atomic<int> got{-1};
    std::thread t1([&] { got = waiter->acquire_run_slot() ? 1 : 0; });
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
    EXPECT_EQ(got.load(), -1);
    runner.reset();
    t1.join();
    EXPECT_EQ(got.load(), 1);

    // ...and a cancelled ticket withdraws instead of running.
    auto cancelled = admission.admit("a");
    std::atomic<int> got2{-1};
    std::thread t2([&] { got2 = cancelled->acquire_run_slot() ? 1 : 0; });
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
    cancelled->cancel();
    t2.join();
    EXPECT_EQ(got2.load(), 0);
    EXPECT_TRUE(cancelled->cancelled());
}

// ------------------------------------------------------------- daemon e2e ---

TEST(service_test, daemon_streams_byte_identical_rows_and_replays_from_cache) {
    util::telemetry::scoped_enable telemetry;
    scratch_dir dir("e2e");
    service::daemon d(daemon_config_for(dir));
    d.start();

    const engine::sweep_spec spec = small_spec();
    const std::string job = job_hex(spec);

    // Cold cache: the daemon computes every replica and the client-side csv
    // rendering is byte-identical to a direct run_sweep.
    service::submit_outcome first;
    EXPECT_EQ(submit_csv(d.config().socket_path, spec, first), reference_csv());
    EXPECT_EQ(first.job, job);
    EXPECT_FALSE(first.cached);
    EXPECT_EQ(first.rows, 2u);
    EXPECT_EQ(first.fresh_replicas, 4u);
    EXPECT_EQ(counter_value(d.metrics(), "cache.stores"), 1u);

    // Warm cache: byte-identical again, zero fresh replicas, and — the
    // headline contract — zero new pool tasks: a hit is a disk replay.
    const std::uint64_t tasks_before = d.pool().stats().tasks_run;
    service::submit_outcome second;
    EXPECT_EQ(submit_csv(d.config().socket_path, spec, second), reference_csv());
    EXPECT_TRUE(second.cached);
    EXPECT_EQ(second.rows, 2u);
    EXPECT_EQ(second.fresh_replicas, 0u);
    EXPECT_EQ(d.pool().stats().tasks_run, tasks_before);
    EXPECT_GE(counter_value(d.metrics(), "cache.hits"), 1u);

    // The finished job is findable as a cache entry; garbage is unknown.
    service::client probe(d.config().socket_path);
    EXPECT_EQ(service::str_field(probe.status(job), "status"), "cached");
    EXPECT_EQ(service::str_field(probe.status("0000000000000000"), "status"),
              "unknown");
    const service::json_value stats = probe.stats();
    EXPECT_EQ(service::u64_field(stats, "queued"), 0u);
    EXPECT_TRUE(service::require(stats, "metrics").find("cache.hits") != nullptr);

    d.stop();
}

TEST(service_test, daemon_rendezvous_serves_concurrent_identical_submissions_once) {
    util::telemetry::scoped_enable telemetry;
    fault_guard faults;
    scratch_dir dir("rendezvous");
    service::daemon d(daemon_config_for(dir));
    d.start();

    const engine::sweep_spec spec = small_spec();
    // Slow the 4 ledger records down so the twin reliably arrives mid-run.
    fault::configure("ledger.record:delay:4:150");

    service::submit_outcome first;
    std::string first_csv;
    std::thread runner(
        [&] { first_csv = submit_csv(d.config().socket_path, spec, first, "a"); });
    await_status(d.config().socket_path, job_hex(spec), "running");

    service::submit_outcome twin;
    const std::string twin_csv = submit_csv(d.config().socket_path, spec, twin, "b");
    runner.join();

    EXPECT_FALSE(first.cached);
    EXPECT_EQ(first.fresh_replicas, 4u);
    EXPECT_TRUE(twin.cached);  // waited on the live job, then replayed
    EXPECT_EQ(twin.fresh_replicas, 0u);
    EXPECT_EQ(first_csv, reference_csv());
    EXPECT_EQ(twin_csv, reference_csv());
    EXPECT_EQ(counter_value(d.metrics(), "cache.stores"), 1u);

    d.stop();
}

TEST(service_test, daemon_sheds_submissions_over_the_admission_bound) {
    util::telemetry::scoped_enable telemetry;
    fault_guard faults;
    scratch_dir dir("shed");
    service::daemon_config config = daemon_config_for(dir);
    config.admission.max_queue = 1;
    service::daemon d(config);
    d.start();

    engine::sweep_spec running_spec = small_spec();
    fault::configure("ledger.record:delay:4:200");

    service::submit_outcome outcome;
    std::thread runner(
        [&] { (void)submit_csv(d.config().socket_path, running_spec, outcome, "a"); });
    await_status(d.config().socket_path, job_hex(running_spec), "running");

    // A *different* sweep (same spec would rendezvous, not queue).
    engine::sweep_spec shed_spec = small_spec();
    shed_spec.base.seed = 43;
    service::submit_outcome ignored;
    EXPECT_THROW((void)submit_csv(d.config().socket_path, shed_spec, ignored, "b"),
                 service::busy_error);
    EXPECT_GE(counter_value(d.metrics(), "admission.shed"), 1u);

    runner.join();
    EXPECT_EQ(outcome.fresh_replicas, 4u);
    d.stop();
}

TEST(service_test, daemon_cancels_a_queued_job_before_it_runs) {
    util::telemetry::scoped_enable telemetry;
    fault_guard faults;
    scratch_dir dir("cancel");
    service::daemon_config config = daemon_config_for(dir);
    config.admission.max_queue = 4;
    config.admission.max_running = 1;
    service::daemon d(config);
    d.start();

    engine::sweep_spec running_spec = small_spec();
    fault::configure("ledger.record:delay:4:300");
    service::submit_outcome running_outcome;
    std::thread runner([&] {
        (void)submit_csv(d.config().socket_path, running_spec, running_outcome, "a");
    });
    await_status(d.config().socket_path, job_hex(running_spec), "running");

    // A second, different job queues behind the single run slot...
    engine::sweep_spec queued_spec = small_spec();
    queued_spec.base.seed = 43;
    const std::string queued_job = job_hex(queued_spec);
    service::submit_outcome queued_outcome;
    std::thread waiter([&] {
        (void)submit_csv(d.config().socket_path, queued_spec, queued_outcome, "b");
    });
    await_status(d.config().socket_path, queued_job, "queued");

    // ...and a cancel from a third connection withdraws it without running.
    service::client canceller(d.config().socket_path);
    const service::json_value response = canceller.cancel(queued_job);
    EXPECT_TRUE(service::bool_field(response, "ok"));
    waiter.join();
    EXPECT_TRUE(queued_outcome.cancelled);

    // Cancelling a job nobody knows is a typed state error.
    EXPECT_THROW((void)canceller.cancel("0000000000000000"), engine::error);

    runner.join();
    EXPECT_FALSE(running_outcome.cancelled);
    EXPECT_EQ(running_outcome.fresh_replicas, 4u);
    EXPECT_GE(counter_value(d.metrics(), "admission.cancelled"), 1u);
    d.stop();
}

TEST(service_test, daemon_resumes_a_crash_ledger_at_the_replica_boundary) {
    util::telemetry::scoped_enable telemetry;
    scratch_dir dir("resume");
    const service::daemon_config config = daemon_config_for(dir);

    // Simulate a daemon SIGKILLed mid-job: a partial (2 of 4 replica)
    // ledger left in work_dir under the job's name. The checkpoint path
    // publishes records in completion order, so any prefix is a state a
    // real crash can leave behind.
    const engine::sweep_spec spec = small_spec();
    engine::run_manifest partial = complete_manifest(spec, dir.path());
    const std::size_t total = partial.records.size();
    ASSERT_EQ(total, 4u);
    partial.records.resize(2);
    fs::create_directories(config.work_dir);
    engine::save_manifest(partial,
                          config.work_dir + "/" + job_hex(spec) + ".manifest");

    service::daemon d(config);
    d.start();
    service::submit_outcome outcome;
    EXPECT_EQ(submit_csv(config.socket_path, spec, outcome), reference_csv());
    EXPECT_FALSE(outcome.cached);
    EXPECT_EQ(outcome.fresh_replicas, 2u);  // only the missing half ran
    EXPECT_EQ(outcome.rows, 2u);

    // The spent ledger is promoted into the cache.
    EXPECT_FALSE(fs::exists(config.work_dir + "/" + job_hex(spec) + ".manifest"));
    service::submit_outcome again;
    EXPECT_EQ(submit_csv(config.socket_path, spec, again), reference_csv());
    EXPECT_TRUE(again.cached);
    d.stop();
}

TEST(service_test, daemon_rejects_unknown_ops_and_bad_specs_with_typed_errors) {
    scratch_dir dir("badops");
    service::daemon d(daemon_config_for(dir));
    d.start();

    service::client c(d.config().socket_path);
    service::json_value bogus = service::json_value::object();
    bogus.set("op", service::json_value::string("frobnicate"));
    try {
        (void)c.request(bogus);
        FAIL() << "unknown op must be refused";
    } catch (const engine::error& e) {
        EXPECT_EQ(e.cls(), engine::errc::spec);
    }

    // A structurally valid submit whose spec fails validation comes back as
    // a spec error too (conflicting axes: c1 and radius).
    engine::sweep_spec bad = small_spec();
    bad.radius = {10.0};
    service::client c2(d.config().socket_path);
    service::submit_outcome ignored;
    std::ostringstream out;
    engine::csv_sink sink(out);
    engine::result_sink* sinks[] = {&sink};
    try {
        (void)c2.submit(bad, "test", sinks);
        FAIL() << "invalid spec must be refused";
    } catch (const engine::error& e) {
        EXPECT_EQ(e.cls(), engine::errc::spec);
    }
    d.stop();
}

}  // namespace
