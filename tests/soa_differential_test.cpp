// Differential determinism suite for the SoA hot-path refactor.
//
// Golden fixtures under tests/fixtures/ were captured from the pre-refactor
// (array-of-structs) simulation and are checked in; the current build must
// reproduce them byte-for-byte. Every mobility model (mrwp, rwp, random_walk,
// random_direction, static) is crossed with every propagation mode (one_hop,
// gossip, per_component) and each combination is evaluated at 1/2/8 replica
// threads and 1/2/8 intra_threads — all nine parallelism shapes must emit the
// exact bytes the serial pre-refactor run produced. A separate kinematics
// fixture pins the walker advance bitwise (position/waypoint/destination bit
// patterns hashed per agent), so a layout or instruction-selection change
// that perturbs even one IEEE result is caught here, not in a downstream
// statistic. The suite must pass on both the vectorized and the
// scalar-fallback (-DMANHATTAN_VECTORIZE=OFF) builds.
//
// Regenerating fixtures (only when *intentionally* changing simulation
// semantics — see docs/PERF.md):
//   MANHATTAN_REGEN_FIXTURES=1 ./soa_differential_test
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/spread.h"
#include "engine/runner.h"
#include "engine/thread_pool.h"
#include "mobility/factory.h"
#include "mobility/walker.h"
#include "rng/rng.h"

namespace {

namespace core = manhattan::core;
namespace mobility = manhattan::mobility;
namespace engine = manhattan::engine;
using manhattan::rng::rng;

// ------------------------------------------------------------- fixtures I/O ---

std::filesystem::path fixture_path(const std::string& name) {
    return std::filesystem::path(MANHATTAN_FIXTURE_DIR) / name;
}

bool regen_requested() { return std::getenv("MANHATTAN_REGEN_FIXTURES") != nullptr; }

// Load the fixture, or (re)write it from \p computed when regeneration was
// requested. Missing fixtures fail loudly with the regeneration command.
std::string load_or_regen(const std::string& name, const std::string& computed) {
    const auto path = fixture_path(name);
    if (regen_requested()) {
        std::filesystem::create_directories(path.parent_path());
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << computed;
        EXPECT_TRUE(out.good()) << "failed to write fixture " << path;
        return computed;
    }
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path
                           << " — regenerate with MANHATTAN_REGEN_FIXTURES=1 "
                              "./soa_differential_test (docs/PERF.md)";
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// ---------------------------------------------------- canonical serialization ---

// spread_result is all-integral (counts, steps, ids), so a decimal text dump
// is an exact, portable encoding: byte equality == bit equality.
template <typename Opt>
void put_optional(std::ostringstream& out, const char* key, const Opt& v) {
    out << key << ' ';
    if (v.has_value()) {
        out << *v;
    } else {
        out << "none";
    }
    out << '\n';
}

void put_message(std::ostringstream& out, const core::message_result& m) {
    out << "message completed " << int{m.completed} << " flooding_time " << m.flooding_time
        << " informed_count " << m.informed_count << " spawn_step " << m.spawn_step << '\n';
    out << "sources";
    for (const std::uint32_t s : m.sources) {
        out << ' ' << s;
    }
    out << '\n';
    put_optional(out, "stop_satisfied_step", m.stop_satisfied_step);
    put_optional(out, "central_zone_informed_step", m.central_zone_informed_step);
    out << "last_suburb_informed_step " << m.last_suburb_informed_step << '\n';
    out << "informed_at";
    for (const std::uint32_t v : m.informed_at) {
        out << ' ' << v;
    }
    out << '\n';
    out << "timeline";
    for (const std::size_t v : m.timeline) {
        out << ' ' << v;
    }
    out << '\n';
}

std::string serialize_spread(const core::spread_result& r) {
    std::ostringstream out;
    out << "spread completed " << int{r.completed} << " steps " << r.steps << " messages "
        << r.messages.size() << '\n';
    for (const core::message_result& m : r.messages) {
        put_message(out, m);
    }
    return out.str();
}

// --------------------------------------------------------- kinematics digest ---

std::uint64_t fnv64(std::uint64_t h, std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xffU;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t fnv64(std::uint64_t h, double v) {
    return fnv64(h, std::bit_cast<std::uint64_t>(v));
}

// Hash the complete kinematic state of every agent — raw IEEE bit patterns,
// so two walkers digest equal iff their states are bit-identical.
std::uint64_t digest_walker(const mobility::walker& w) {
    std::uint64_t h = 14695981039346656037ULL;
    for (std::size_t i = 0; i < w.size(); ++i) {
        const mobility::trip_state s = w.agent(i);
        h = fnv64(h, s.pos.x);
        h = fnv64(h, s.pos.y);
        h = fnv64(h, s.waypoint.x);
        h = fnv64(h, s.waypoint.y);
        h = fnv64(h, s.dest.x);
        h = fnv64(h, s.dest.y);
        h = fnv64(h, std::uint64_t{s.leg});
    }
    for (const std::uint64_t v : w.turn_counts()) {
        h = fnv64(h, v);
    }
    for (const std::uint64_t v : w.arrival_counts()) {
        h = fnv64(h, v);
    }
    return h;
}

std::string hex16(std::uint64_t v) {
    std::ostringstream out;
    out << std::hex << std::setw(16) << std::setfill('0') << v;
    return out.str();
}

// ------------------------------------------------------------- combo matrix ---

const mobility::model_kind kModels[] = {
    mobility::model_kind::mrwp,           mobility::model_kind::rwp,
    mobility::model_kind::random_walk,    mobility::model_kind::random_direction,
    mobility::model_kind::static_agents,
};

struct combo {
    mobility::model_kind model;
    core::propagation mode;
};

const char* mode_name(core::propagation mode) {
    switch (mode) {
        case core::propagation::one_hop: return "one_hop";
        case core::propagation::per_component: return "per_component";
        case core::propagation::gossip: return "gossip";
    }
    return "?";
}

// A small but full-featured workload: two messages (a corner flood plus a
// two-source random message spawning mid-run), Central-Zone metrics on, and
// the per-step timeline recorded — every field of spread_result is exercised.
core::scenario combo_scenario(const combo& c) {
    core::scenario sc;
    const std::size_t n = 500;
    sc.params = core::net_params::standard_case(
        n, 3.0 * std::sqrt(std::log(static_cast<double>(n))), 1.0);
    sc.model = c.model;
    sc.seed = 0x50a0 + static_cast<std::uint64_t>(c.model) * 16 +
              static_cast<std::uint64_t>(c.mode);
    sc.record_timeline = true;
    sc.with_cell_partition = true;
    sc.max_steps = 3000;
    core::message_spec first;
    first.sources = core::source_spec::at(core::source_placement::corner_most);
    first.mode = c.mode;
    core::message_spec second;
    second.sources = core::source_spec::random(2);
    second.spawn_step = 3;
    second.mode = c.mode;
    if (c.mode == core::propagation::gossip) {
        first.gossip_p = 0.35;
        second.gossip_p = 0.35;
    }
    sc.spread.messages = {first, second};
    sc.spread.stop = core::stop_rule::all_informed();
    return sc;
}

// The full canonical text of one combo at one parallelism shape: the direct
// run_scenario result plus two engine-level replicas. Equal bytes across
// shapes == bit-identical results (spread_result is all-integral).
std::string canonical_text(const combo& c, std::size_t replica_threads,
                           std::size_t intra_threads) {
    core::scenario sc = combo_scenario(c);
    sc.intra_threads = intra_threads;
    std::ostringstream out;
    out << "soa differential fixture v1\n";
    out << "combo " << mobility::model_kind_name(c.model) << ' ' << mode_name(c.mode)
        << " n " << sc.params.n << " seed " << sc.seed << '\n';
    out << "direct\n" << serialize_spread(core::run_scenario(sc).spread);
    const auto replicas = engine::run_replicas(sc, 2, {.threads = replica_threads});
    for (std::size_t r = 0; r < replicas.size(); ++r) {
        out << "replica " << r << '\n' << serialize_spread(replicas[r].spread);
    }
    return out.str();
}

std::string combo_fixture_name(const combo& c) {
    return std::string("soa_") + mobility::model_kind_name(c.model) + "_" +
           mode_name(c.mode) + ".txt";
}

// -------------------------------------------------------------------- tests ---

class soa_differential : public ::testing::TestWithParam<combo> {};

TEST_P(soa_differential, matches_pre_refactor_fixture_at_every_thread_count) {
    const combo c = GetParam();
    const std::string serial = canonical_text(c, 1, 1);
    const std::string expected = load_or_regen(combo_fixture_name(c), serial);
    ASSERT_EQ(serial, expected)
        << "serial run diverged from the pre-refactor golden fixture";
    // Replica-level fan-out at 2 and 8 worker threads, then intra-replica
    // lane parallelism at 2 and 8 lanes: each must emit the exact same bytes.
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        EXPECT_EQ(canonical_text(c, threads, 1), expected)
            << "replica level diverged at threads=" << threads;
    }
    for (const std::size_t intra : {std::size_t{2}, std::size_t{8}}) {
        EXPECT_EQ(canonical_text(c, 1, intra), expected)
            << "intra-replica level diverged at intra_threads=" << intra;
    }
}

std::string combo_label(const ::testing::TestParamInfo<combo>& info) {
    return mobility::model_kind_name(info.param.model) + std::string("_") +
           mode_name(info.param.mode);
}

std::vector<combo> all_combos() {
    std::vector<combo> out;
    for (const mobility::model_kind model : kModels) {
        for (const core::propagation mode :
             {core::propagation::one_hop, core::propagation::gossip,
              core::propagation::per_component}) {
            out.push_back({model, mode});
        }
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(all_models_and_modes, soa_differential,
                         ::testing::ValuesIn(all_combos()), combo_label);

// The kinematics digest pins the advance kernel bitwise, per model: serial
// stepping, a coarse advance_time jump, and the uniform_fresh start mode.
// Lane-parallel stepping must match the serial digest exactly (same fixture
// line), at 2 and 8 lanes.
TEST(soa_walker_kinematics, digest_matches_fixture_at_every_lane_count) {
    const double side = 40.0;
    const std::size_t n = 300;
    const double speed = 0.9;
    std::ostringstream text;
    text << "walker kinematics fixture v1\n";
    for (const mobility::model_kind kind : kModels) {
        const auto model = mobility::make_model(kind, side, {});
        const std::uint64_t seed = 11 + static_cast<std::uint64_t>(kind);

        mobility::walker serial(model, n, speed, rng{seed});
        for (int s = 0; s < 60; ++s) {
            serial.step();
        }
        const std::uint64_t stepped = digest_walker(serial);
        serial.advance_time(7.25);
        const std::uint64_t jumped = digest_walker(serial);

        mobility::walker fresh(model, n, speed, rng{seed},
                               mobility::start_mode::uniform_fresh);
        for (int s = 0; s < 10; ++s) {
            fresh.step();
        }
        const std::uint64_t fresh_digest = digest_walker(fresh);

        text << mobility::model_kind_name(kind) << " steps " << hex16(stepped)
             << " advance " << hex16(jumped) << " fresh " << hex16(fresh_digest) << '\n';

        for (const std::size_t lanes : {std::size_t{2}, std::size_t{8}}) {
            engine::thread_pool pool(lanes);
            mobility::walker parallel(model, n, speed, rng{seed});
            for (int s = 0; s < 60; ++s) {
                parallel.step(pool.executor());
            }
            EXPECT_EQ(digest_walker(parallel), stepped)
                << mobility::model_kind_name(kind) << " diverged at " << lanes << " lanes";
        }
    }
    const std::string expected = load_or_regen("walker_kinematics.txt", text.str());
    EXPECT_EQ(text.str(), expected)
        << "kinematics diverged bitwise from the pre-refactor fixture";
}

}  // namespace
