// Randomized-spec property suite for the spread engine: ~50 seeded random
// small spread workloads (message counts, source placements, spawn steps,
// stop rules, gossip probabilities, mobility models) each run three times —
// serial, serial again, and with a 4-lane intra-replica pool. The repeats
// must be bit-identical (spread_result has operator==; every field is
// integral), and every result must satisfy the structural invariants the
// spec promises: monotone per-message timelines, informed counts consistent
// with informed_at, sources informed exactly at their spawn step, and
// flooding_time / steps consistent with the stop rule.
//
// The generator is deterministically seeded, so a failure reproduces from
// the iteration index alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "core/scenario.h"
#include "core/spread.h"

namespace {

namespace core = manhattan::core;
namespace mobility = manhattan::mobility;

constexpr int kIterations = 50;

std::size_t pick(std::mt19937_64& g, std::size_t lo, std::size_t hi) {
    return std::uniform_int_distribution<std::size_t>(lo, hi)(g);
}

double pick_real(std::mt19937_64& g, double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(g);
}

core::source_spec random_sources(std::mt19937_64& g, std::size_t n) {
    switch (pick(g, 0, 2)) {
        case 0: {
            const core::source_placement placements[] = {
                core::source_placement::random_agent, core::source_placement::center_most,
                core::source_placement::corner_most,  core::source_placement::corner_ne,
                core::source_placement::corner_nw,    core::source_placement::corner_se,
            };
            return core::source_spec::at(placements[pick(g, 0, 5)], pick(g, 1, 3));
        }
        case 1: {
            std::set<std::size_t> ids;
            const std::size_t count = pick(g, 1, 3);
            while (ids.size() < count) {
                ids.insert(pick(g, 0, n - 1));
            }
            return core::source_spec::agents({ids.begin(), ids.end()});
        }
        default:
            return core::source_spec::random(pick(g, 1, 3));
    }
}

core::stop_rule random_stop(std::mt19937_64& g) {
    switch (pick(g, 0, 3)) {
        case 0: return core::stop_rule::all_informed();
        case 1: return core::stop_rule::informed_fraction(pick_real(g, 0.3, 1.0));
        case 2: return core::stop_rule::central_zone();
        default: return core::stop_rule::step_budget(pick(g, 5, 60));
    }
}

core::scenario random_scenario(std::mt19937_64& g) {
    core::scenario sc;
    const std::size_t n = pick(g, 60, 320);
    const double radius =
        pick_real(g, 0.8, 1.3) * 3.0 * std::sqrt(std::log(static_cast<double>(n)));
    sc.params = core::net_params::standard_case(n, radius, pick_real(g, 0.5, 1.5));
    const mobility::model_kind models[] = {
        mobility::model_kind::mrwp,           mobility::model_kind::rwp,
        mobility::model_kind::random_walk,    mobility::model_kind::random_direction,
        mobility::model_kind::static_agents,
    };
    sc.model = models[pick(g, 0, 4)];
    sc.seed = g();
    sc.record_timeline = true;
    sc.with_cell_partition = true;
    sc.max_steps = 400;
    const std::size_t messages = pick(g, 1, 3);
    for (std::size_t m = 0; m < messages; ++m) {
        core::message_spec msg;
        msg.sources = random_sources(g, n);
        msg.spawn_step = pick(g, 0, 5);
        const core::propagation modes[] = {core::propagation::one_hop,
                                           core::propagation::gossip,
                                           core::propagation::per_component};
        msg.mode = modes[pick(g, 0, 2)];
        if (msg.mode == core::propagation::gossip) {
            msg.gossip_p = pick_real(g, 0.15, 1.0);
        }
        sc.spread.messages.push_back(std::move(msg));
    }
    sc.spread.stop = random_stop(g);
    return sc;
}

// Structural invariants every result must satisfy regardless of the spec.
void check_invariants(const core::scenario& sc, const core::scenario_outcome& out) {
    const std::size_t n = sc.params.n;
    const core::spread_result& r = out.spread;
    EXPECT_LE(r.steps, sc.max_steps);
    ASSERT_EQ(r.messages.size(), sc.spread.messages.size());

    for (std::size_t mi = 0; mi < r.messages.size(); ++mi) {
        const core::message_result& m = r.messages[mi];
        const core::message_spec& spec = sc.spread.messages[mi];
        EXPECT_EQ(m.spawn_step, spec.spawn_step);

        // Timeline: one entry per step until the message completed, counts
        // monotone non-decreasing and never beyond n.
        EXPECT_LE(m.timeline.size(), r.steps);
        for (std::size_t s = 1; s < m.timeline.size(); ++s) {
            EXPECT_LE(m.timeline[s - 1], m.timeline[s]) << "message " << mi;
        }
        if (!m.timeline.empty()) {
            EXPECT_LE(m.timeline.back(), n);
            EXPECT_EQ(m.timeline.back(), m.informed_count);
        }

        // informed_at is the ledger: its non-sentinel entries count the
        // informed set, sources are informed exactly at the spawn step, and
        // nobody is informed before it.
        ASSERT_EQ(m.informed_at.size(), n);
        std::size_t informed = 0;
        std::uint32_t last_step = 0;
        for (const std::uint32_t at : m.informed_at) {
            if (at != core::never_informed) {
                ++informed;
                EXPECT_GE(at, spec.spawn_step);
                EXPECT_LE(at, r.steps);
                last_step = std::max(last_step, at);
            }
        }
        EXPECT_EQ(informed, m.informed_count);
        for (const std::uint32_t src : m.sources) {
            ASSERT_LT(src, n);
            EXPECT_EQ(m.informed_at[src], spec.spawn_step) << "source " << src;
        }

        // flooding_time: the last informing step when complete, the run
        // length otherwise.
        EXPECT_EQ(m.completed, !m.sources.empty() && m.informed_count == n);
        if (m.completed) {
            EXPECT_EQ(m.flooding_time, last_step);
        } else {
            EXPECT_EQ(m.flooding_time, r.steps);
        }
        if (m.stop_satisfied_step.has_value()) {
            EXPECT_LE(*m.stop_satisfied_step, r.steps);
        }
        EXPECT_EQ(r.completed, r.completed && m.stop_satisfied_step.has_value());
    }

    // Stop-rule consistency.
    const core::stop_rule& stop = sc.spread.stop;
    if (stop.how == core::stop_rule::kind::step_budget) {
        // The budget rule ignores coverage: the run ends exactly on it
        // (max_steps = 400 always covers the 5..60 budgets generated here).
        EXPECT_TRUE(r.completed);
        EXPECT_EQ(r.steps, stop.steps);
    }
    if (r.completed) {
        for (const core::message_result& m : r.messages) {
            switch (stop.how) {
                case core::stop_rule::kind::all_informed:
                    EXPECT_EQ(m.informed_count, n);
                    break;
                case core::stop_rule::kind::informed_fraction: {
                    const auto target = static_cast<std::size_t>(
                        std::ceil(stop.fraction * static_cast<double>(n)));
                    EXPECT_GE(m.informed_count, std::clamp<std::size_t>(target, 1, n));
                    break;
                }
                case core::stop_rule::kind::central_zone:
                    if (out.cell_side > 0.0) {
                        EXPECT_TRUE(m.central_zone_informed_step.has_value());
                    } else {
                        EXPECT_EQ(m.informed_count, n);  // documented fallback
                    }
                    break;
                case core::stop_rule::kind::step_budget:
                    break;
            }
        }
    }
}

TEST(spread_fuzz, random_specs_are_deterministic_and_consistent) {
    std::mt19937_64 gen(0x5eedf00dULL);
    for (int iter = 0; iter < kIterations; ++iter) {
        SCOPED_TRACE(testing::Message() << "iteration " << iter);
        const core::scenario sc = random_scenario(gen);

        const core::scenario_outcome serial = core::run_scenario(sc);
        check_invariants(sc, serial);

        // Repeated-run bit-identity: same spec, same bytes.
        const core::scenario_outcome repeat = core::run_scenario(sc);
        EXPECT_EQ(serial.spread, repeat.spread);
        EXPECT_EQ(serial.flood, repeat.flood);

        // Serial vs parallel bit-identity: a 4-lane intra-replica pool must
        // change nothing.
        core::scenario parallel_sc = sc;
        parallel_sc.intra_threads = 4;
        const core::scenario_outcome parallel = core::run_scenario(parallel_sc);
        EXPECT_EQ(serial.spread, parallel.spread);
    }
}

}  // namespace
