// Unit tests for the spread-process API: source resolution, stop rules,
// multi-message semantics (spawn steps, independence of overlaid messages),
// the single-message compatibility contract, and the determinism acceptance
// criterion — a k-message spread_result is bit-identical across replica
// thread counts and intra_threads counts, for one_hop and gossip modes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "core/flooding.h"
#include "core/params.h"
#include "core/scenario.h"
#include "core/spread.h"
#include "engine/runner.h"
#include "mobility/mrwp.h"
#include "mobility/static_model.h"
#include "mobility/walker.h"

namespace {

namespace core = manhattan::core;
namespace mobility = manhattan::mobility;
namespace engine = manhattan::engine;
using manhattan::geom::vec2;
using manhattan::rng::rng;

constexpr double kL = 100.0;

mobility::walker frozen_walker(const std::vector<vec2>& positions) {
    auto model = std::make_shared<mobility::static_model>(kL);
    mobility::walker w(model, positions.size(), 0.0, rng{1});
    for (std::size_t i = 0; i < positions.size(); ++i) {
        mobility::trip_state s;
        s.pos = positions[i];
        s.waypoint = positions[i];
        s.dest = positions[i];
        s.leg = 1;
        w.set_agent(i, s);
    }
    return w;
}

// ------------------------------------------------------- source resolution ---

TEST(source_spec_test, validation_errors) {
    const std::vector<vec2> p{{1, 1}, {2, 2}, {3, 3}};
    EXPECT_THROW((void)core::resolve_sources(core::source_spec::at(
                     core::source_placement::random_agent, 0), p, kL, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)core::resolve_sources(core::source_spec::random(4), p, kL, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)core::resolve_sources(core::source_spec::agents({}), p, kL, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)core::resolve_sources(core::source_spec::agents({0, 0}), p, kL, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)core::resolve_sources(core::source_spec::agents({3}), p, kL, 1),
                 std::invalid_argument);
}

TEST(source_spec_test, random_placement_takes_prefix_of_exchangeable_sample) {
    const std::vector<vec2> p{{5, 5}, {1, 1}, {9, 9}, {2, 2}};
    const auto one = core::resolve_sources(
        core::source_spec::at(core::source_placement::random_agent), p, kL, 1);
    EXPECT_EQ(one, (std::vector<std::uint32_t>{0}));
    const auto three = core::resolve_sources(
        core::source_spec::at(core::source_placement::random_agent, 3), p, kL, 1);
    EXPECT_EQ(three, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(source_spec_test, placement_rules_pick_nearest_to_target) {
    // Square of side 10 with agents near each corner and the center.
    const std::vector<vec2> p{{1, 1}, {9, 9}, {1, 9}, {9, 1}, {5, 5}};
    const double side = 10.0;
    using sp = core::source_placement;
    EXPECT_EQ(core::resolve_sources(core::source_spec::at(sp::corner_most), p, side, 1),
              (std::vector<std::uint32_t>{0}));
    EXPECT_EQ(core::resolve_sources(core::source_spec::at(sp::corner_ne), p, side, 1),
              (std::vector<std::uint32_t>{1}));
    EXPECT_EQ(core::resolve_sources(core::source_spec::at(sp::corner_nw), p, side, 1),
              (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(core::resolve_sources(core::source_spec::at(sp::corner_se), p, side, 1),
              (std::vector<std::uint32_t>{3}));
    EXPECT_EQ(core::resolve_sources(core::source_spec::at(sp::center_most), p, side, 1),
              (std::vector<std::uint32_t>{4}));
    // count > 1: the two nearest the SW corner, ascending id.
    EXPECT_EQ(core::resolve_sources(core::source_spec::at(sp::corner_most, 2), p, side, 1),
              (std::vector<std::uint32_t>{0, 4}));
}

TEST(source_spec_test, random_k_is_a_deterministic_distinct_subset) {
    std::vector<vec2> p(50, vec2{1, 1});
    const auto a = core::resolve_sources(core::source_spec::random(8), p, kL, 42);
    const auto b = core::resolve_sources(core::source_spec::random(8), p, kL, 42);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 8u);
    EXPECT_EQ(std::set<std::uint32_t>(a.begin(), a.end()).size(), 8u);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    const auto c = core::resolve_sources(core::source_spec::random(8), p, kL, 43);
    EXPECT_NE(a, c);
    // k == n returns the whole population.
    const auto all = core::resolve_sources(core::source_spec::random(50), p, kL, 7);
    EXPECT_EQ(all.size(), 50u);
}

TEST(stop_rule_test, validation_errors) {
    EXPECT_THROW(core::stop_rule::informed_fraction(0.0).validate(), std::invalid_argument);
    EXPECT_THROW(core::stop_rule::informed_fraction(1.5).validate(), std::invalid_argument);
    EXPECT_THROW(core::stop_rule::step_budget(0).validate(), std::invalid_argument);
    EXPECT_NO_THROW(core::stop_rule::informed_fraction(0.5).validate());
    EXPECT_NO_THROW(core::stop_rule::all_informed().validate());
}

// ------------------------------------------------- multi-message semantics ---

core::spread_config two_chain_config() {
    // Agents 0-4: a unit-spaced chain at y=10; agents 5-9: another at y=50.
    // Message 0 floods the first chain from its left end, message 1 the
    // second chain from its right end; R=1 keeps the chains disconnected.
    core::spread_config cfg;
    core::message_spec m0;
    m0.sources = core::source_spec::agents({0});
    core::message_spec m1;
    m1.sources = core::source_spec::agents({9});
    cfg.spread.messages = {m0, m1};
    cfg.max_steps = 100;
    return cfg;
}

std::vector<vec2> two_chains() {
    std::vector<vec2> p;
    for (int i = 0; i < 5; ++i) {
        p.push_back({10.0 + i, 10.0});
    }
    for (int i = 0; i < 5; ++i) {
        p.push_back({10.0 + i, 50.0});
    }
    return p;
}

TEST(spread_test, messages_are_independent_overlays) {
    core::flooding_sim sim(frozen_walker(two_chains()), 1.0, two_chain_config());
    const auto result = sim.run_spread();
    // Neither message can cross between the chains: both stall at 5 agents,
    // the run hits max_steps, and per-message results are independent.
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(result.steps, 100u);
    ASSERT_EQ(result.messages.size(), 2u);
    const auto& m0 = result.messages[0];
    const auto& m1 = result.messages[1];
    EXPECT_FALSE(m0.completed);
    EXPECT_EQ(m0.informed_count, 5u);
    EXPECT_EQ(m1.informed_count, 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(m0.informed_at[i], static_cast<std::uint32_t>(i));
        EXPECT_EQ(m0.informed_at[5 + i], core::never_informed);
        EXPECT_EQ(m1.informed_at[5 + i], static_cast<std::uint32_t>(4 - i));
        EXPECT_EQ(m1.informed_at[i], core::never_informed);
    }
    EXPECT_EQ(m0.sources, (std::vector<std::uint32_t>{0}));
    EXPECT_EQ(m1.sources, (std::vector<std::uint32_t>{9}));
}

TEST(spread_test, matches_standalone_single_message_runs) {
    // Each message of a 2-message run must reproduce the standalone
    // single-message run with the same specs bit for bit (messages share
    // the trace, never each other's state).
    auto cfg = two_chain_config();
    const auto both = core::flooding_sim(frozen_walker(two_chains()), 1.0, cfg).run_spread();
    for (std::size_t m = 0; m < 2; ++m) {
        core::spread_config solo = cfg;
        solo.spread.messages = {cfg.spread.messages[m]};
        const auto alone =
            core::flooding_sim(frozen_walker(two_chains()), 1.0, solo).run_spread();
        EXPECT_EQ(both.messages[m].informed_at, alone.messages[0].informed_at);
        EXPECT_EQ(both.messages[m].timeline, alone.messages[0].timeline);
        EXPECT_EQ(both.messages[m].informed_count, alone.messages[0].informed_count);
    }
}

TEST(spread_test, completed_message_timeline_freezes_at_completion) {
    // One chain of 7, message A seeded mid-chain (completes at step 3),
    // message B from the far end (completes at step 6). A's timeline must
    // stop growing at its completion step — identical to its standalone
    // run — while the joint run continues for B.
    std::vector<vec2> p;
    for (int i = 0; i < 7; ++i) {
        p.push_back({10.0 + i, 10.0});
    }
    core::spread_config cfg;
    core::message_spec a;
    a.sources = core::source_spec::agents({3});
    core::message_spec b;
    b.sources = core::source_spec::agents({0});
    cfg.spread.messages = {a, b};
    cfg.max_steps = 100;
    const auto joint = core::flooding_sim(frozen_walker(p), 1.0, cfg).run_spread();
    ASSERT_TRUE(joint.completed);
    EXPECT_EQ(joint.steps, 6u);
    EXPECT_TRUE(joint.messages[0].completed);
    EXPECT_EQ(joint.messages[0].flooding_time, 3u);
    EXPECT_EQ(joint.messages[0].timeline, (std::vector<std::size_t>{3, 5, 7}));
    EXPECT_EQ(joint.messages[1].timeline, (std::vector<std::size_t>{2, 3, 4, 5, 6, 7}));

    core::spread_config solo = cfg;
    solo.spread.messages = {a};
    const auto alone = core::flooding_sim(frozen_walker(p), 1.0, solo).run_spread();
    EXPECT_EQ(joint.messages[0].timeline, alone.messages[0].timeline);
    EXPECT_EQ(joint.messages[0].informed_at, alone.messages[0].informed_at);
    EXPECT_EQ(joint.messages[0].flooding_time, alone.messages[0].flooding_time);
}

TEST(spread_test, spawn_step_delays_a_message) {
    std::vector<vec2> chain;
    for (int i = 0; i < 4; ++i) {
        chain.push_back({10.0 + i, 10.0});
    }
    core::spread_config cfg;
    core::message_spec first;
    first.sources = core::source_spec::agents({0});
    core::message_spec late = first;
    late.spawn_step = 3;
    cfg.spread.messages = {first, late};
    cfg.max_steps = 50;
    core::flooding_sim sim(frozen_walker(chain), 1.0, cfg);
    const auto result = sim.run_spread();
    ASSERT_TRUE(result.completed);
    const auto& m0 = result.messages[0];
    const auto& m1 = result.messages[1];
    EXPECT_EQ(m0.flooding_time, 3u);
    // The late copy starts at step 3 and walks the same chain: every agent
    // is informed exactly spawn_step later.
    EXPECT_TRUE(m1.completed);
    EXPECT_EQ(m1.spawn_step, 3u);
    for (std::size_t i = 0; i < chain.size(); ++i) {
        EXPECT_EQ(m1.informed_at[i], m0.informed_at[i] + 3);
    }
    EXPECT_EQ(m1.flooding_time, 6u);
    // Timeline entries before the spawn are zero.
    ASSERT_GE(m1.timeline.size(), 3u);
    EXPECT_EQ(m1.timeline[0], 0u);
    EXPECT_EQ(m1.timeline[1], 0u);
    EXPECT_EQ(m1.timeline[2], 1u);
}

TEST(spread_test, multi_source_message_floods_from_every_source) {
    std::vector<vec2> chain;
    for (int i = 0; i < 9; ++i) {
        chain.push_back({10.0 + i, 10.0});
    }
    core::spread_config cfg;
    core::message_spec msg;
    msg.sources = core::source_spec::agents({0, 8});
    cfg.spread.messages = {msg};
    cfg.max_steps = 50;
    const auto result =
        core::flooding_sim(frozen_walker(chain), 1.0, cfg).run_spread();
    ASSERT_TRUE(result.completed);
    // Two waves meet in the middle: time 4 instead of 8.
    EXPECT_EQ(result.messages[0].flooding_time, 4u);
    EXPECT_EQ(result.messages[0].informed_at[4], 4u);
    EXPECT_EQ(result.messages[0].sources, (std::vector<std::uint32_t>{0, 8}));
}

// -------------------------------------------------------------- stop rules ---

TEST(spread_test, informed_fraction_stop_halts_early) {
    std::vector<vec2> chain;
    for (int i = 0; i < 10; ++i) {
        chain.push_back({10.0 + i, 10.0});
    }
    core::spread_config cfg;
    core::message_spec msg;
    msg.sources = core::source_spec::agents({0});
    cfg.spread.messages = {msg};
    cfg.spread.stop = core::stop_rule::informed_fraction(0.5);
    cfg.max_steps = 100;
    const auto result =
        core::flooding_sim(frozen_walker(chain), 1.0, cfg).run_spread();
    // ceil(0.5 * 10) = 5 agents: source + 4 hops.
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.steps, 4u);
    EXPECT_EQ(result.messages[0].informed_count, 5u);
    EXPECT_FALSE(result.messages[0].completed);  // not everyone informed
    EXPECT_EQ(result.messages[0].stop_satisfied_step, 4u);
}

TEST(spread_test, step_budget_stop_runs_exactly_that_long) {
    std::vector<vec2> chain;
    for (int i = 0; i < 10; ++i) {
        chain.push_back({10.0 + i, 10.0});
    }
    core::spread_config cfg;
    core::message_spec msg;
    msg.sources = core::source_spec::agents({0});
    cfg.spread.messages = {msg};
    cfg.spread.stop = core::stop_rule::step_budget(3);
    cfg.max_steps = 100;
    const auto result =
        core::flooding_sim(frozen_walker(chain), 1.0, cfg).run_spread();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.steps, 3u);
    EXPECT_EQ(result.messages[0].informed_count, 4u);
}

TEST(spread_test, central_zone_stop_halts_at_cz_informed_step) {
    core::scenario sc;
    const std::size_t n = 1500;
    sc.params = core::net_params::standard_case(
        n, 3.0 * std::sqrt(std::log(static_cast<double>(n))), 1.0);
    sc.seed = 5;
    sc.max_steps = 50'000;
    const auto full = core::run_scenario(sc);
    ASSERT_TRUE(full.flood.completed);
    ASSERT_TRUE(full.flood.central_zone_informed_step.has_value());

    sc.spread.stop = core::stop_rule::central_zone();
    const auto early = core::run_scenario(sc);
    EXPECT_TRUE(early.spread.completed);
    EXPECT_EQ(early.spread.steps, *full.flood.central_zone_informed_step);
    EXPECT_EQ(early.spread.messages[0].stop_satisfied_step,
              full.flood.central_zone_informed_step);
}

// ------------------------------------------------ scenario-level contracts ---

core::scenario small_scenario() {
    core::scenario sc;
    const std::size_t n = 1500;
    sc.params = core::net_params::standard_case(
        n, 3.0 * std::sqrt(std::log(static_cast<double>(n))), 1.0);
    sc.seed = 3;
    sc.max_steps = 50'000;
    return sc;
}

TEST(spread_scenario_test, explicit_single_message_spread_equals_legacy_fields) {
    const auto sc = small_scenario();
    const auto legacy = core::run_scenario(sc);

    core::scenario explicit_sc = sc;
    core::message_spec msg;
    msg.sources = core::source_spec::at(core::source_placement::random_agent);
    explicit_sc.spread.messages = {msg};
    const auto spread = core::run_scenario(explicit_sc);

    EXPECT_EQ(legacy.flood.flooding_time, spread.flood.flooding_time);
    EXPECT_EQ(legacy.flood.informed_at, spread.flood.informed_at);
    EXPECT_EQ(legacy.source_agent, spread.source_agent);
}

TEST(spread_scenario_test, outcome_flood_is_message_zero_view) {
    auto sc = small_scenario();
    sc.record_timeline = true;
    const auto out = core::run_scenario(sc);
    ASSERT_EQ(out.spread.messages.size(), 1u);
    EXPECT_EQ(out.flood.flooding_time, out.spread.messages[0].flooding_time);
    EXPECT_EQ(out.flood.informed_at, out.spread.messages[0].informed_at);
    EXPECT_EQ(out.flood.timeline, out.spread.messages[0].timeline);
    EXPECT_EQ(out.flood.central_zone_informed_step,
              out.spread.messages[0].central_zone_informed_step);
}

TEST(spread_scenario_test, gossip_streams_differ_per_message) {
    // Two identical gossip messages in one scenario: per-message coin
    // streams are derived from seed XOR message id, so their spreads differ
    // (almost surely) even though the specs coincide.
    auto sc = small_scenario();
    core::message_spec msg;
    msg.sources = core::source_spec::at(core::source_placement::random_agent);
    msg.mode = core::propagation::gossip;
    msg.gossip_p = 0.3;
    sc.spread.messages = {msg, msg};
    const auto out = core::run_scenario(sc);
    ASSERT_EQ(out.spread.messages.size(), 2u);
    EXPECT_TRUE(out.spread.messages[0].completed);
    EXPECT_TRUE(out.spread.messages[1].completed);
    EXPECT_NE(out.spread.messages[0].informed_at, out.spread.messages[1].informed_at);
}

// --------------------------------------------------- determinism acceptance ---

void expect_same_message(const core::message_result& a, const core::message_result& b) {
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.flooding_time, b.flooding_time);
    EXPECT_EQ(a.informed_count, b.informed_count);
    EXPECT_EQ(a.informed_at, b.informed_at);
    EXPECT_EQ(a.timeline, b.timeline);
    EXPECT_EQ(a.sources, b.sources);
    EXPECT_EQ(a.spawn_step, b.spawn_step);
    EXPECT_EQ(a.stop_satisfied_step, b.stop_satisfied_step);
    EXPECT_EQ(a.central_zone_informed_step, b.central_zone_informed_step);
    EXPECT_EQ(a.last_suburb_informed_step, b.last_suburb_informed_step);
}

void expect_same_spread(const core::spread_result& a, const core::spread_result& b) {
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.steps, b.steps);
    ASSERT_EQ(a.messages.size(), b.messages.size());
    for (std::size_t m = 0; m < a.messages.size(); ++m) {
        expect_same_message(a.messages[m], b.messages[m]);
    }
}

class spread_determinism : public ::testing::TestWithParam<core::propagation> {
 protected:
    // A 3-message workload: opposite corners plus a staggered random-pair
    // message, all in the parameterised propagation mode.
    [[nodiscard]] core::scenario multi_scenario() const {
        auto sc = small_scenario();
        sc.record_timeline = true;
        core::message_spec a;
        a.sources = core::source_spec::at(core::source_placement::corner_most);
        core::message_spec b;
        b.sources = core::source_spec::at(core::source_placement::corner_ne);
        core::message_spec c;
        c.sources = core::source_spec::random(2);
        c.spawn_step = 5;
        sc.spread.messages = {a, b, c};
        for (auto& msg : sc.spread.messages) {
            msg.mode = GetParam();
            msg.gossip_p = GetParam() == core::propagation::gossip ? 0.35 : 1.0;
        }
        return sc;
    }
};

TEST_P(spread_determinism, bit_identical_across_replica_thread_counts) {
    const auto sc = multi_scenario();
    constexpr std::size_t kReps = 3;
    const auto reference = engine::run_replicas(sc, kReps, {.threads = 1});
    ASSERT_EQ(reference.size(), kReps);
    for (const auto& out : reference) {
        ASSERT_TRUE(out.spread.completed);
    }
    for (const std::size_t threads : {2u, 8u}) {
        const auto outcomes = engine::run_replicas(sc, kReps, {.threads = threads});
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ASSERT_EQ(outcomes.size(), kReps);
        for (std::size_t r = 0; r < kReps; ++r) {
            expect_same_spread(reference[r].spread, outcomes[r].spread);
        }
    }
}

TEST_P(spread_determinism, bit_identical_across_intra_thread_counts) {
    auto sc = multi_scenario();
    const auto serial = core::run_scenario(sc);  // intra_threads = 1: serial path
    ASSERT_TRUE(serial.spread.completed);
    for (const std::size_t threads : {2u, 8u}) {
        sc.intra_threads = threads;
        const auto threaded = core::run_scenario(sc);
        SCOPED_TRACE("intra_threads=" + std::to_string(threads));
        expect_same_spread(serial.spread, threaded.spread);
    }
}

INSTANTIATE_TEST_SUITE_P(modes, spread_determinism,
                         ::testing::Values(core::propagation::one_hop,
                                           core::propagation::gossip));

// per_component rides the same machinery; pin it once at the sim level with
// the shared-DSU path (two messages in one step share one components build).
TEST(spread_test, per_component_messages_share_components_deterministically) {
    auto sc = small_scenario();
    core::message_spec a;
    a.sources = core::source_spec::at(core::source_placement::corner_most);
    a.mode = core::propagation::per_component;
    core::message_spec b;
    b.sources = core::source_spec::at(core::source_placement::corner_ne);
    b.mode = core::propagation::per_component;
    sc.spread.messages = {a, b};
    const auto serial = core::run_scenario(sc);
    sc.intra_threads = 4;
    const auto threaded = core::run_scenario(sc);
    ASSERT_TRUE(serial.spread.completed);
    expect_same_spread(serial.spread, threaded.spread);
}

}  // namespace
