// Validation of the perfect (stationary) samplers against the paper's closed
// forms. The sampler is the independent Palm-calculus construction, so these
// tests are genuine two-sided checks of Theorem 1, Theorem 2 and Eq. 4/5 —
// and of the dynamics, via stationarity-preservation under time evolution.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "density/destination.h"
#include "density/spatial.h"
#include "geom/grid_spec.h"
#include "mobility/mrwp.h"
#include "mobility/rwp.h"
#include "mobility/walker.h"
#include "rng/rng.h"
#include "stats/gof.h"

namespace {

namespace density = manhattan::density;
namespace mobility = manhattan::mobility;
namespace stats = manhattan::stats;
using manhattan::geom::grid_spec;
using manhattan::geom::vec2;
using manhattan::rng::rng;

constexpr double kL = 100.0;

// Expected masses of an mxm grid under Theorem 1's pdf.
std::vector<double> theorem1_grid_masses(const grid_spec& grid) {
    std::vector<double> masses(grid.cell_count());
    for (std::size_t id = 0; id < grid.cell_count(); ++id) {
        masses[id] = density::spatial_rect_mass(grid.rect_of(grid.coord_of(id)), grid.side());
    }
    return masses;
}

std::vector<std::uint64_t> bin_positions(const grid_spec& grid,
                                         std::span<const vec2> positions) {
    std::vector<std::uint64_t> counts(grid.cell_count(), 0);
    for (const vec2 p : positions) {
        ++counts[grid.cell_id_of(p)];
    }
    return counts;
}

TEST(theorem1_test, perfect_sampler_matches_spatial_pdf_chi_square) {
    mobility::manhattan_random_waypoint model(kL);
    rng g{101};
    const grid_spec grid(kL, 8);
    std::vector<std::uint64_t> counts(grid.cell_count(), 0);
    const int n = 400'000;
    for (int i = 0; i < n; ++i) {
        ++counts[grid.cell_id_of(model.stationary_state(g).pos)];
    }
    const auto expected = theorem1_grid_masses(grid);
    const double stat = stats::chi_square_statistic(counts, expected);
    EXPECT_LT(stat, stats::chi_square_critical(grid.cell_count() - 1));
}

TEST(theorem1_test, perfect_sampler_marginal_ks) {
    mobility::manhattan_random_waypoint model(kL);
    rng g{102};
    std::vector<double> xs;
    std::vector<double> ys;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) {
        const auto s = model.stationary_state(g);
        xs.push_back(s.pos.x);
        ys.push_back(s.pos.y);
    }
    const auto cdf = [](double x) { return density::spatial_marginal_cdf(x, kL); };
    EXPECT_LT(stats::ks_statistic(xs, cdf), stats::ks_critical(n));
    EXPECT_LT(stats::ks_statistic(ys, cdf), stats::ks_critical(n));
}

TEST(theorem1_test, uniform_start_fails_the_same_chi_square) {
    // Control experiment: uniform positions must be *rejected* against
    // Theorem 1 — confirms the test above has discriminating power.
    rng g{103};
    const grid_spec grid(kL, 8);
    std::vector<std::uint64_t> counts(grid.cell_count(), 0);
    const int n = 400'000;
    for (int i = 0; i < n; ++i) {
        ++counts[grid.cell_id_of({g.uniform(0, kL), g.uniform(0, kL)})];
    }
    const auto expected = theorem1_grid_masses(grid);
    EXPECT_GT(stats::chi_square_statistic(counts, expected),
              stats::chi_square_critical(grid.cell_count() - 1));
}

TEST(theorem1_test, stationarity_is_preserved_by_the_dynamics) {
    // Start from the perfect sample, run the chain, re-test against Theorem 1.
    // This couples the sampler AND the advance() kinematics to the closed form.
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(kL);
    const std::size_t n = 50'000;
    mobility::walker w(model, n, 2.0, rng{104});
    for (int t = 0; t < 40; ++t) {
        w.step();
    }
    const grid_spec grid(kL, 6);
    const auto counts = bin_positions(grid, w.positions());
    const auto expected = theorem1_grid_masses(grid);
    EXPECT_LT(stats::chi_square_statistic(counts, expected),
              stats::chi_square_critical(grid.cell_count() - 1));
}

TEST(theorem1_test, warmup_converges_from_uniform_start) {
    // The non-stationary start drifts towards the stationary law: total
    // variation against Theorem 1 must shrink substantially after a warm-up
    // of several trip lengths.
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(kL);
    const std::size_t n = 40'000;
    const grid_spec grid(kL, 6);
    const auto expected = theorem1_grid_masses(grid);

    auto tv_against_theorem1 = [&](const mobility::walker& w) {
        const auto counts = bin_positions(grid, w.positions());
        std::vector<double> empirical(counts.size());
        for (std::size_t i = 0; i < counts.size(); ++i) {
            empirical[i] = static_cast<double>(counts[i]) / static_cast<double>(n);
        }
        return stats::total_variation(empirical, expected);
    };

    mobility::walker w(model, n, 2.0, rng{105}, mobility::start_mode::uniform_fresh);
    const double tv_before = tv_against_theorem1(w);
    w.advance_time(5.0 * kL / 2.0);  // ~5 mean trip lengths of travel
    const double tv_after = tv_against_theorem1(w);
    EXPECT_LT(tv_after, tv_before / 2.0);
    EXPECT_LT(tv_after, 0.02);
}

TEST(theorem1_test, suburb_mass_is_tiny_but_positive) {
    // Corner regions carry asymptotically negligible mass: the [0, L/10]^2
    // corner holds < 0.4% of agents though it covers 1% of the area.
    mobility::manhattan_random_waypoint model(kL);
    rng g{106};
    const int n = 200'000;
    int corner = 0;
    for (int i = 0; i < n; ++i) {
        const auto s = model.stationary_state(g);
        if (s.pos.x < kL / 10 && s.pos.y < kL / 10) {
            ++corner;
        }
    }
    const double frac = static_cast<double>(corner) / n;
    const double expected =
        density::spatial_rect_mass(manhattan::geom::rect::make({0, 0}, {kL / 10, kL / 10}), kL);
    EXPECT_GT(frac, 0.0);
    EXPECT_LT(frac, 0.004);
    EXPECT_NEAR(frac, expected, 0.001);
}

// ---------------------------------------------------------------------------
// Theorem 2 / Eq. 4/5 — via conditioning the perfect sample on a small box.
// ---------------------------------------------------------------------------

struct probe_case {
    double x0;
    double y0;
};

class theorem2_probe : public ::testing::TestWithParam<probe_case> {};

TEST_P(theorem2_probe, cross_mass_and_quadrants_match) {
    const auto pc = GetParam();
    const vec2 probe{pc.x0, pc.y0};
    const double box = kL / 40.0;  // conditioning window
    mobility::manhattan_random_waypoint model(kL);
    rng g{107};

    std::size_t hits = 0;
    std::size_t on_final_leg = 0;
    std::size_t south = 0;
    std::size_t west = 0;
    std::size_t quad_counts[4] = {0, 0, 0, 0};
    const std::size_t want_hits = 8'000;
    std::size_t draws = 0;
    const std::size_t max_draws = 60'000'000;

    while (hits < want_hits && draws < max_draws) {
        ++draws;
        const auto s = model.stationary_state(g);
        if (std::abs(s.pos.x - probe.x) > box / 2 || std::abs(s.pos.y - probe.y) > box / 2) {
            continue;
        }
        ++hits;
        if (s.on_final_leg()) {
            ++on_final_leg;
            // Direction of final-leg travel = which cross segment carries the
            // destination.
            if (s.dest.y < s.pos.y && s.dest.x == s.pos.x) {
                ++south;
            }
            if (s.dest.x < s.pos.x && s.dest.y == s.pos.y) {
                ++west;
            }
        } else {
            const double dx = s.dest.x - s.pos.x;
            const double dy = s.dest.y - s.pos.y;
            if (dx != 0.0 && dy != 0.0) {
                const int q = (dx < 0 ? 0 : 1) + (dy < 0 ? 0 : 2);  // sw, se, nw, ne
                ++quad_counts[q];
            }
        }
    }
    ASSERT_EQ(hits, want_hits) << "not enough conditional samples";

    // P(cross | position) = 1/2 — the paper's headline identity.
    EXPECT_NEAR(static_cast<double>(on_final_leg) / hits, 0.5, 0.025);

    // Eq. 4/5: per-segment split.
    EXPECT_NEAR(static_cast<double>(south) / hits,
                density::phi(probe, density::cross_segment::south, kL), 0.02);
    EXPECT_NEAR(static_cast<double>(west) / hits,
                density::phi(probe, density::cross_segment::west, kL), 0.02);

    // Theorem 2: quadrant masses (each at most 1/2).
    const density::quadrant quads[4] = {density::quadrant::sw, density::quadrant::se,
                                        density::quadrant::nw, density::quadrant::ne};
    for (int q = 0; q < 4; ++q) {
        EXPECT_NEAR(static_cast<double>(quad_counts[q]) / hits,
                    density::quadrant_mass(probe, quads[q], kL), 0.025);
    }
}

INSTANTIATE_TEST_SUITE_P(probes, theorem2_probe,
                         ::testing::Values(probe_case{kL / 3, kL / 4},   // Fig. 1's position
                                           probe_case{kL / 2, kL / 2},   // center
                                           probe_case{kL / 5, kL / 5})); // towards a corner

// ---------------------------------------------------------------------------
// RWP baseline sampler sanity.
// ---------------------------------------------------------------------------

TEST(rwp_stationary_test, dynamics_preserve_the_sampled_law) {
    // No closed form asserted; instead require the sampled law to be (nearly)
    // invariant under 30 steps of dynamics, binning into a coarse grid.
    auto model = std::make_shared<mobility::random_waypoint>(kL);
    const std::size_t n = 60'000;
    const grid_spec grid(kL, 5);

    mobility::walker w0(model, n, 2.0, rng{108});
    const auto before = bin_positions(grid, w0.positions());
    mobility::walker w1(model, n, 2.0, rng{109});
    for (int t = 0; t < 30; ++t) {
        w1.step();
    }
    const auto after = bin_positions(grid, w1.positions());

    std::vector<double> p(before.size());
    std::vector<double> q(after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        p[i] = static_cast<double>(before[i]) / static_cast<double>(n);
        q[i] = static_cast<double>(after[i]) / static_cast<double>(n);
    }
    EXPECT_LT(stats::total_variation(p, q), 0.02);
}

TEST(rwp_stationary_test, center_denser_than_corner) {
    // Classic RWP border effect (Bettstetter et al.): center >> corners.
    mobility::random_waypoint model(kL);
    rng g{110};
    int center = 0;
    int corner = 0;
    const double w = kL / 10;
    for (int i = 0; i < 200'000; ++i) {
        const auto s = model.stationary_state(g);
        if (std::abs(s.pos.x - kL / 2) < w / 2 && std::abs(s.pos.y - kL / 2) < w / 2) {
            ++center;
        }
        if (s.pos.x < w && s.pos.y < w) {
            ++corner;
        }
    }
    EXPECT_GT(center, 3 * corner);
}

TEST(mrwp_vs_rwp_test, mrwp_center_density_matches_thm1_not_rwp) {
    // MRWP's center density is exactly 1.5/L^2 (50% above uniform); check the
    // empirical window density against it.
    mobility::manhattan_random_waypoint model(kL);
    rng g{111};
    const double w = kL / 20;
    int center = 0;
    const int n = 400'000;
    for (int i = 0; i < n; ++i) {
        const auto s = model.stationary_state(g);
        if (std::abs(s.pos.x - kL / 2) < w / 2 && std::abs(s.pos.y - kL / 2) < w / 2) {
            ++center;
        }
    }
    const double measured_density = static_cast<double>(center) / n / (w * w);
    EXPECT_NEAR(measured_density, density::spatial_pdf_max(kL), 0.1 * density::spatial_pdf_max(kL));
}

}  // namespace
