// Unit tests for the stats module: summaries, histograms, goodness-of-fit
// statistics, and the regression helpers the scaling-law benches use.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.h"
#include "stats/fit.h"
#include "stats/gof.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace {

namespace stats = manhattan::stats;

TEST(summary_test, known_values) {
    const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0, 5.0};
    const auto s = stats::summarize(xs);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.p25, 2.0);
    EXPECT_DOUBLE_EQ(s.p75, 4.0);
    EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(summary_test, single_element) {
    const std::vector<double> xs = {7.0};
    const auto s = stats::summarize(xs);
    EXPECT_DOUBLE_EQ(s.mean, 7.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(summary_test, empty_sample_throws) {
    const std::vector<double> xs;
    EXPECT_THROW((void)stats::summarize(xs), std::invalid_argument);
    EXPECT_THROW((void)stats::mean(xs), std::invalid_argument);
    EXPECT_THROW((void)stats::percentile(xs, 0.5), std::invalid_argument);
}

TEST(percentile_test, interpolation) {
    const std::vector<double> xs = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 0.25), 2.5);
    EXPECT_THROW((void)stats::percentile(xs, 1.5), std::invalid_argument);
}

TEST(histogram_test, construction_validates) {
    EXPECT_THROW((void)stats::histogram1d(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW((void)stats::histogram1d(0.0, 1.0, 0), std::invalid_argument);
}

TEST(histogram_test, binning_and_clamping) {
    stats::histogram1d h(0.0, 10.0, 10);
    h.add(0.5);    // bin 0
    h.add(9.99);   // bin 9
    h.add(-5.0);   // clamps to bin 0
    h.add(42.0);   // clamps to bin 9
    h.add(5.0);    // bin 5
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.count(5), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(histogram_test, pdf_integrates_to_one) {
    stats::histogram1d h(0.0, 1.0, 20);
    manhattan::rng::rng g{1};
    for (int i = 0; i < 10'000; ++i) {
        h.add(g.uniform01());
    }
    double integral = 0.0;
    for (std::size_t b = 0; b < h.bin_count(); ++b) {
        integral += h.pdf(b) * h.bin_width();
    }
    EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(histogram_test, bin_center) {
    stats::histogram1d h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
    EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
    EXPECT_THROW((void)h.bin_center(10), std::out_of_range);
}

TEST(chi_square_test, perfect_fit_is_small) {
    const std::vector<std::uint64_t> obs = {1000, 1000, 1000, 1000};
    const std::vector<double> expected(4, 0.25);
    EXPECT_DOUBLE_EQ(stats::chi_square_statistic(obs, expected), 0.0);
}

TEST(chi_square_test, gross_mismatch_is_large) {
    const std::vector<std::uint64_t> obs = {4000, 0, 0, 0};
    const std::vector<double> expected(4, 0.25);
    EXPECT_GT(stats::chi_square_statistic(obs, expected), stats::chi_square_critical(3));
}

TEST(chi_square_test, uniform_sample_passes) {
    manhattan::rng::rng g{2};
    std::vector<std::uint64_t> obs(10, 0);
    for (int i = 0; i < 100'000; ++i) {
        ++obs[g.uniform_index(10)];
    }
    const std::vector<double> expected(10, 0.1);
    EXPECT_LT(stats::chi_square_statistic(obs, expected), stats::chi_square_critical(9));
}

TEST(chi_square_test, validates_input) {
    const std::vector<std::uint64_t> obs = {1, 2};
    EXPECT_THROW((void)stats::chi_square_statistic(obs, std::vector<double>{0.5}),
                 std::invalid_argument);
    EXPECT_THROW((void)stats::chi_square_statistic(obs, std::vector<double>{0.5, 0.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)
        stats::chi_square_statistic(std::vector<std::uint64_t>{5}, std::vector<double>{1.0}),
        std::invalid_argument);
}

TEST(chi_square_test, critical_grows_with_dof) {
    EXPECT_LT(stats::chi_square_critical(1), stats::chi_square_critical(10));
    EXPECT_LT(stats::chi_square_critical(10), stats::chi_square_critical(100));
    // Must dominate the mean of the chi-square distribution (= dof).
    EXPECT_GT(stats::chi_square_critical(50), 50.0);
}

TEST(ks_test, uniform_sample_against_uniform_cdf_passes) {
    manhattan::rng::rng g{3};
    std::vector<double> sample;
    for (int i = 0; i < 20'000; ++i) {
        sample.push_back(g.uniform01());
    }
    const double d = stats::ks_statistic(sample, [](double x) {
        return x <= 0 ? 0.0 : x >= 1 ? 1.0 : x;
    });
    EXPECT_LT(d, stats::ks_critical(sample.size()));
}

TEST(ks_test, uniform_sample_against_wrong_cdf_fails) {
    manhattan::rng::rng g{3};
    std::vector<double> sample;
    for (int i = 0; i < 20'000; ++i) {
        sample.push_back(g.uniform01());
    }
    // Claim the sample is Beta(2,2): should be rejected decisively.
    const double d = stats::ks_statistic(sample, [](double x) {
        return x <= 0 ? 0.0 : x >= 1 ? 1.0 : 3 * x * x - 2 * x * x * x;
    });
    EXPECT_GT(d, stats::ks_critical(sample.size()));
}

TEST(ks_test, empty_sample_throws) {
    EXPECT_THROW((void)stats::ks_statistic({}, [](double) { return 0.5; }), std::invalid_argument);
}

TEST(total_variation_test, identical_distributions_have_zero_distance) {
    const std::vector<double> p = {0.25, 0.25, 0.5};
    EXPECT_DOUBLE_EQ(stats::total_variation(p, p), 0.0);
}

TEST(total_variation_test, disjoint_distributions_have_distance_one) {
    const std::vector<double> p = {1.0, 0.0};
    const std::vector<double> q = {0.0, 1.0};
    EXPECT_DOUBLE_EQ(stats::total_variation(p, q), 1.0);
}

TEST(total_variation_test, size_mismatch_throws) {
    EXPECT_THROW((void)
        stats::total_variation(std::vector<double>{1.0}, std::vector<double>{0.5, 0.5}),
        std::invalid_argument);
}

TEST(linear_fit_test, recovers_exact_line) {
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (const double x : xs) {
        ys.push_back(2.5 * x - 1.0);
    }
    const auto fit = stats::linear_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 2.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(linear_fit_test, noise_reduces_r2) {
    manhattan::rng::rng g{4};
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 200; ++i) {
        xs.push_back(static_cast<double>(i));
        ys.push_back(g.uniform(-1, 1));  // pure noise: slope ~ 0, r2 ~ 0
    }
    const auto fit = stats::linear_fit(xs, ys);
    EXPECT_LT(fit.r2, 0.2);
    EXPECT_NEAR(fit.slope, 0.0, 0.05);
}

TEST(linear_fit_test, validates_input) {
    EXPECT_THROW((void)stats::linear_fit(std::vector<double>{1.0}, std::vector<double>{1.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)
        stats::linear_fit(std::vector<double>{1, 1, 1}, std::vector<double>{1, 2, 3}),
        std::invalid_argument);
    EXPECT_THROW((void)stats::linear_fit(std::vector<double>{1, 2}, std::vector<double>{1}),
                 std::invalid_argument);
}

TEST(power_fit_test, recovers_exponent) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 1; i <= 20; ++i) {
        xs.push_back(static_cast<double>(i));
        ys.push_back(3.0 * std::pow(static_cast<double>(i), -1.5));
    }
    const auto fit = stats::power_fit(xs, ys);
    EXPECT_NEAR(fit.exponent, -1.5, 1e-9);
    EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(power_fit_test, rejects_non_positive_values) {
    EXPECT_THROW((void)stats::power_fit(std::vector<double>{1, -2}, std::vector<double>{1, 2}),
                 std::invalid_argument);
    EXPECT_THROW((void)stats::power_fit(std::vector<double>{1, 2}, std::vector<double>{0, 2}),
                 std::invalid_argument);
}

}  // namespace
