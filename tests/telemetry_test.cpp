// Unit tests for the observability layer (docs/OBSERVABILITY.md): the
// telemetry switch and phase profiler, the metrics registry, the JSONL trace
// sink, the progress reporter — and the contract that underwrites all of it:
// telemetry is observation only, so flood/spread outputs are bit-identical
// with telemetry on or off, at any thread count.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "engine/metrics.h"
#include "engine/progress.h"
#include "engine/runner.h"
#include "engine/sink.h"
#include "engine/sweep.h"
#include "engine/thread_pool.h"
#include "engine/trace_sink.h"
#include "util/telemetry.h"
#include "util/timer.h"

namespace {

namespace core = manhattan::core;
namespace engine = manhattan::engine;
namespace util = manhattan::util;
namespace telemetry = manhattan::util::telemetry;

core::scenario small_scenario() {
    core::scenario sc;
    const std::size_t n = 1200;
    sc.params = core::net_params::standard_case(
        n, 3.0 * std::sqrt(std::log(static_cast<double>(n))), 1.0);
    sc.seed = 42;
    sc.max_steps = 50'000;
    return sc;
}

/// A unique temp path per test (the suite may run in parallel with others).
std::string temp_path(const std::string& tag) {
    return testing::TempDir() + "telemetry_test." + tag + "." +
           std::to_string(::getpid()) + ".jsonl";
}

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// ----------------------------------------------------------------- switch ---

TEST(telemetry_switch_test, off_by_default_and_scoped_enable_restores) {
    EXPECT_FALSE(telemetry::enabled());
    {
        const telemetry::scoped_enable on;
        EXPECT_TRUE(telemetry::enabled());
        {
            const telemetry::scoped_enable off(false);
            EXPECT_FALSE(telemetry::enabled());
        }
        EXPECT_TRUE(telemetry::enabled());
    }
    EXPECT_FALSE(telemetry::enabled());
}

TEST(telemetry_switch_test, phase_timer_is_inert_while_disabled) {
    util::phase_profile profile;
    { const util::phase_timer t(profile, util::phase::advance); }
    EXPECT_EQ(profile, util::phase_profile{});

    const telemetry::scoped_enable on;
    { const util::phase_timer t(profile, util::phase::advance); }
    EXPECT_EQ(profile.calls[0], 1u);
    EXPECT_GE(profile.seconds[0], 0.0);
}

TEST(telemetry_switch_test, phase_profile_accumulates_and_merges) {
    util::phase_profile a;
    a.add(util::phase::advance, 1.0);
    a.add(util::phase::scan, 2.0);
    util::phase_profile b;
    b.add(util::phase::scan, 3.0);
    a += b;
    EXPECT_DOUBLE_EQ(a.seconds[static_cast<std::size_t>(util::phase::scan)], 5.0);
    EXPECT_EQ(a.calls[static_cast<std::size_t>(util::phase::scan)], 2u);
    EXPECT_DOUBLE_EQ(a.total_seconds(), 6.0);
}

TEST(timer_test, lap_returns_splits_and_seconds_keeps_total) {
    util::timer t;
    const double lap1 = t.lap();
    const double lap2 = t.lap();
    const double total = t.seconds();
    EXPECT_GE(lap1, 0.0);
    EXPECT_GE(lap2, 0.0);
    EXPECT_GE(total, lap1);  // total spans both laps
}

// ---------------------------------------------------------------- metrics ---

TEST(metrics_test, instruments_are_gated_on_the_switch) {
    engine::counter c;
    engine::gauge g;
    engine::fixed_histogram h({1.0, 10.0});
    c.add(3);
    g.add(1.5);
    h.observe(0.5);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_EQ(h.total(), 0u);

    const telemetry::scoped_enable on;
    c.add(3);
    g.add(1.5);
    g.add(2.5);
    h.observe(0.5);
    h.observe(5.0);
    h.observe(100.0);  // overflow bucket
    EXPECT_EQ(c.value(), 3u);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(metrics_test, histogram_rejects_bad_bounds) {
    EXPECT_THROW(engine::fixed_histogram({}), std::invalid_argument);
    EXPECT_THROW(engine::fixed_histogram({2.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(engine::fixed_histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(metrics_test, registry_returns_stable_refs_and_rejects_kind_mismatch) {
    engine::metrics_registry reg;
    engine::counter& c1 = reg.get_counter("a.count");
    engine::counter& c2 = reg.get_counter("a.count");
    EXPECT_EQ(&c1, &c2);
    (void)reg.get_gauge("a.gauge");
    (void)reg.get_histogram("a.hist", {1.0, 2.0});
    EXPECT_THROW((void)reg.get_gauge("a.count"), std::invalid_argument);
    EXPECT_THROW((void)reg.get_counter("a.hist"), std::invalid_argument);
    EXPECT_THROW((void)reg.get_histogram("a.hist", {1.0, 3.0}), std::invalid_argument);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);  // sorted by name
    EXPECT_EQ(snap[0].name, "a.count");
    EXPECT_EQ(snap[1].name, "a.gauge");
    EXPECT_EQ(snap[2].name, "a.hist");
}

TEST(metrics_test, aggregate_snapshots_sums_by_name) {
    const telemetry::scoped_enable on;
    engine::metrics_registry a;
    engine::metrics_registry b;
    a.get_counter("c").add(2);
    b.get_counter("c").add(5);
    a.get_gauge("g").add(1.0);
    b.get_gauge("g").add(0.5);
    a.get_histogram("h", {1.0}).observe(0.5);
    b.get_histogram("h", {1.0}).observe(2.0);
    b.get_counter("only_b").add(1);

    const std::vector<std::vector<engine::metric_snapshot>> sets{a.snapshot(),
                                                                 b.snapshot()};
    const auto merged = engine::aggregate_snapshots(sets);
    ASSERT_EQ(merged.size(), 4u);
    EXPECT_EQ(merged[0].name, "c");
    EXPECT_DOUBLE_EQ(merged[0].value, 7.0);
    EXPECT_DOUBLE_EQ(merged[1].value, 1.5);
    EXPECT_EQ(merged[2].counts, (std::vector<std::uint64_t>{1, 1}));
    EXPECT_DOUBLE_EQ(merged[3].value, 1.0);

    engine::metrics_registry c;
    (void)c.get_gauge("c");  // same name, different kind
    const std::vector<std::vector<engine::metric_snapshot>> bad{a.snapshot(),
                                                                c.snapshot()};
    EXPECT_THROW((void)engine::aggregate_snapshots(bad), std::invalid_argument);
}

// ------------------------------------------------------------- pool stats ---

TEST(pool_stats_test, tracks_tasks_and_busy_time_only_while_enabled) {
    engine::thread_pool pool(2);
    pool.parallel_for(16, [](std::size_t) {});
    EXPECT_EQ(pool.stats().tasks_run, 0u);  // disabled: nothing measured

    const telemetry::scoped_enable on;
    std::atomic<int> hits{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&hits] { ++hits; }).get();
    }
    const engine::pool_stats s = pool.stats();
    EXPECT_EQ(hits.load(), 8);
    EXPECT_EQ(s.workers, 2u);
    EXPECT_EQ(s.tasks_run, 8u);
    EXPECT_EQ(s.queue_wait_counts.size(), s.queue_wait_bounds.size() + 1);
    std::uint64_t waits = 0;
    for (const auto c : s.queue_wait_counts) {
        waits += c;
    }
    EXPECT_EQ(waits, 8u);
    EXPECT_GT(s.alive_seconds, 0.0);
    EXPECT_GE(s.busy_fraction(), 0.0);
    EXPECT_LE(s.busy_fraction(), 1.0);
}

// ------------------------------------------------- determinism (tentpole) ---

/// The hard constraint of the observability layer: enabling telemetry must
/// not perturb a single bit of the simulation output, at any combination of
/// replica threads and intra-replica lanes.
TEST(telemetry_determinism_test, spread_results_bit_identical_on_or_off) {
    for (const std::size_t intra : {1u, 2u, 8u}) {
        core::scenario sc = small_scenario();
        sc.intra_threads = intra;
        const core::scenario_outcome off = core::run_scenario(sc);
        EXPECT_EQ(off.phases, util::phase_profile{});  // no timing leaked

        const telemetry::scoped_enable enable;
        const core::scenario_outcome on = core::run_scenario(sc);

        EXPECT_EQ(on.spread.steps, off.spread.steps) << "intra=" << intra;
        EXPECT_EQ(on.spread.completed, off.spread.completed);
        ASSERT_EQ(on.spread.messages.size(), off.spread.messages.size());
        for (std::size_t m = 0; m < on.spread.messages.size(); ++m) {
            EXPECT_EQ(on.spread.messages[m].flooding_time,
                      off.spread.messages[m].flooding_time);
            EXPECT_EQ(on.spread.messages[m].informed_at,
                      off.spread.messages[m].informed_at)
                << "intra=" << intra << " message=" << m;
            EXPECT_EQ(on.spread.messages[m].sources, off.spread.messages[m].sources);
        }
        // The enabled run measured something, and the phases tile the loop:
        // every accumulated second is non-negative, advance ran every step.
        EXPECT_GT(on.phases.total_seconds(), 0.0);
        for (const double s : on.phases.seconds) {
            EXPECT_GE(s, 0.0);
        }
        EXPECT_EQ(on.phases.calls[static_cast<std::size_t>(util::phase::advance)],
                  on.spread.steps);
    }
}

TEST(telemetry_determinism_test, replica_fanout_bit_identical_on_or_off) {
    const core::scenario sc = small_scenario();
    const auto off = engine::flooding_times(sc, 4, {.threads = 2});
    const telemetry::scoped_enable enable;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        engine::run_options opts;
        opts.threads = threads;
        EXPECT_EQ(engine::flooding_times(sc, 4, opts), off) << "threads=" << threads;
    }
}

TEST(telemetry_determinism_test, sweep_csv_byte_identical_with_observability_on) {
    engine::sweep_spec spec;
    spec.base = small_scenario();
    spec.c1 = {2.5, 3.5};
    spec.repetitions = 2;

    const auto run_csv = [&spec](engine::run_options opts) {
        std::ostringstream csv;
        engine::csv_sink sink(csv);
        engine::result_sink* sinks[] = {&sink};
        (void)engine::run_sweep(spec, opts, sinks);
        return csv.str();
    };

    const std::string plain = run_csv({.threads = 2});

    const telemetry::scoped_enable enable;
    engine::trace_sink trace(temp_path("csv"), 64);
    std::ostringstream progress_out;
    engine::progress_reporter progress(
        2, 4, {.min_interval_seconds = 0.0, .out = &progress_out});
    engine::run_options loud;
    loud.threads = 1;  // different thread count AND telemetry on
    loud.trace = &trace;
    loud.progress = &progress;
    const std::string traced = run_csv(loud);

    EXPECT_EQ(traced, plain);
    EXPECT_GT(trace.events(), 0u);
    EXPECT_EQ(progress.replicas_done(), 4u);
    std::remove(temp_path("csv").c_str());
}

// ------------------------------------------------------------- trace sink ---

TEST(trace_sink_test, unwritable_path_throws_before_any_work) {
    EXPECT_THROW(engine::trace_sink("/nonexistent-dir/x/trace.jsonl"),
                 std::invalid_argument);
}

TEST(trace_sink_test, publishes_complete_lines_per_cadence) {
    const std::string path = temp_path("cadence");
    {
        engine::trace_sink sink(path, 3);
        EXPECT_EQ(slurp(path), "");  // constructor publishes an empty file
        sink.emit("a", {engine::trace_field::num("k", std::uint64_t{1})});
        sink.emit("b", {});
        // Below the cadence: the disk copy is still the empty publish, so a
        // kill here loses only unpublished events, never partial lines.
        EXPECT_EQ(slurp(path), "");
        sink.emit("c", {});
        const std::string at3 = slurp(path);
        EXPECT_EQ(at3.find("\"event\": \"a\""), at3.find("{") + 1);
        EXPECT_NE(at3.find("\"event\": \"c\""), std::string::npos);
        sink.emit("d", {});
        EXPECT_EQ(slurp(path), at3);  // buffered again
    }  // destructor flush
    const std::string final_text = slurp(path);
    EXPECT_NE(final_text.find("\"event\": \"d\""), std::string::npos);

    // Envelope: every line carries event/seq/t, seq is dense from 0.
    std::istringstream lines(final_text);
    std::string line;
    std::size_t seq = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"event\": \""), std::string::npos);
        EXPECT_NE(line.find("\"seq\": " + std::to_string(seq) + ","), std::string::npos);
        EXPECT_NE(line.find("\"t\": "), std::string::npos);
        ++seq;
    }
    EXPECT_EQ(seq, 4u);
    std::remove(path.c_str());
}

TEST(trace_sink_test, field_builders_render_json_values) {
    EXPECT_EQ(engine::trace_field::num("k", 1.5).rendered, "1.5");
    EXPECT_EQ(engine::trace_field::num("k", std::uint64_t{7}).rendered, "7");
    EXPECT_EQ(engine::trace_field::boolean("k", true).rendered, "true");
    EXPECT_EQ(engine::trace_field::str("k", "a\"b\\c\nd").rendered,
              "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(engine::trace_field::raw("k", "{\"x\": 1}").rendered, "{\"x\": 1}");
}

TEST(trace_sink_test, sweep_events_bracket_points_and_replicas) {
    engine::sweep_spec spec;
    spec.base = small_scenario();
    spec.c1 = {2.5, 3.5};
    spec.repetitions = 2;

    const std::string path = temp_path("sweep");
    engine::trace_sink trace(path, 1);
    engine::run_options opts;
    opts.threads = 2;
    opts.trace = &trace;
    (void)engine::run_sweep(spec, opts, {});

    const std::string text = slurp(path);
    const auto count = [&text](const std::string& needle) {
        std::size_t hits = 0;
        for (std::size_t at = text.find(needle); at != std::string::npos;
             at = text.find(needle, at + 1)) {
            ++hits;
        }
        return hits;
    };
    EXPECT_EQ(count("\"event\": \"sweep_begin\""), 1u);
    EXPECT_EQ(count("\"event\": \"sweep_end\""), 1u);
    EXPECT_EQ(count("\"event\": \"point_begin\""), 2u);
    EXPECT_EQ(count("\"event\": \"point_end\""), 2u);
    EXPECT_EQ(count("\"event\": \"replica_begin\""), 4u);
    EXPECT_EQ(count("\"event\": \"replica_end\""), 4u);
    EXPECT_EQ(count("\"fingerprint\": \""), 1u);
    EXPECT_EQ(count("\"phases\": {"), 5u);  // 4 replica_end + sweep_end
    EXPECT_EQ(count("\"pool\": {"), 1u);
    EXPECT_EQ(count("\"metrics\": ["), 1u);

    // The begin of a replica always precedes its end, and the sweep events
    // bracket everything.
    EXPECT_LT(text.find("sweep_begin"), text.find("replica_begin"));
    EXPECT_GT(text.rfind("sweep_end"), text.rfind("replica_end"));
    std::remove(path.c_str());
}

// --------------------------------------------------------------- progress ---

TEST(progress_test, renders_counts_rate_and_replayed) {
    std::ostringstream out;
    engine::progress_reporter progress(
        2, 6, {.min_interval_seconds = 0.0, .out = &out});
    progress.add_replayed(2);
    EXPECT_EQ(progress.replicas_done(), 2u);
    EXPECT_NE(progress.last_line().find("replicas 2/6 (2 replayed)"),
              std::string::npos);
    progress.replica_done();
    progress.replica_done();
    progress.point_done();
    EXPECT_NE(progress.last_line().find("points 1/2"), std::string::npos);
    EXPECT_NE(progress.last_line().find("replicas 4/6"), std::string::npos);
    EXPECT_NE(progress.last_line().find("replicas/s"), std::string::npos);
    progress.finish();
    const std::string text = out.str();
    EXPECT_EQ(text.back(), '\n');
    // Plain-line mode (no TTY): no carriage returns.
    EXPECT_EQ(text.find('\r'), std::string::npos);
}

TEST(progress_test, throttles_below_min_interval) {
    std::ostringstream out;
    engine::progress_reporter progress(1, 100,
                                       {.min_interval_seconds = 3600.0, .out = &out});
    for (int i = 0; i < 50; ++i) {
        progress.replica_done();
    }
    EXPECT_TRUE(out.str().empty());  // nothing rendered inside the interval
    progress.finish();               // force
    EXPECT_NE(out.str().find("replicas 50/100"), std::string::npos);
}

}  // namespace
