// Street-graph topology suite: the topology_spec sum type, the compiled
// intersection graph (CSR adjacency, one-way / blocked edges, deterministic
// next-hop routing), the graph-native MRWP, the trace_replay model, and the
// API-wide back-compat contracts this PR pins:
//   - a pure manhattan_grid spec fingerprints exactly as it did before
//     topologies existed (hex values pinned below against PR 9's engine);
//   - an explicit manhattan_grid topology runs byte-identically to the
//     default (legacy) path;
//   - street-graph scenarios are bit-identical serial vs parallel at every
//     thread/lane count, through run_scenario, run_replicas, run_sweep and
//     the fabric spec round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "engine/fabric.h"
#include "engine/manifest.h"
#include "engine/runner.h"
#include "engine/sweep.h"
#include "engine/thread_pool.h"
#include "geom/street_graph.h"
#include "mobility/factory.h"
#include "mobility/graph_mrwp.h"
#include "mobility/trace.h"
#include "mobility/walker.h"
#include "rng/rng.h"

namespace {

namespace core = manhattan::core;
namespace engine = manhattan::engine;
namespace geom = manhattan::geom;
namespace mobility = manhattan::mobility;
using manhattan::rng::rng;

// ------------------------------------------------------------ spec checks --

TEST(topology_spec, default_is_the_grid_and_grid_must_stay_empty) {
    const geom::topology_spec t;
    EXPECT_TRUE(t.is_grid());
    EXPECT_NO_THROW(t.validate(10.0));
    EXPECT_EQ(t, geom::topology_spec::manhattan());

    // The canonical pure-grid form is empty street data — that is what makes
    // the "grid hashes as before" fingerprint rule collision-free.
    geom::topology_spec dirty;
    dirty.street.xs = {0.0, 1.0};
    EXPECT_THROW(dirty.validate(10.0), std::invalid_argument);
}

TEST(topology_spec, uniform_builder_spans_the_square) {
    const auto plan = geom::street_graph_spec::uniform(12.0, 4);
    ASSERT_EQ(plan.xs.size(), 5u);
    ASSERT_EQ(plan.ys.size(), 5u);
    EXPECT_EQ(plan.xs.front(), 0.0);
    EXPECT_EQ(plan.xs.back(), 12.0);
    EXPECT_NO_THROW(geom::topology_spec::streets(plan).validate(12.0));
    EXPECT_THROW(geom::street_graph_spec::uniform(0.0, 4), std::invalid_argument);
    EXPECT_THROW(geom::street_graph_spec::uniform(12.0, 0), std::invalid_argument);
}

TEST(topology_spec, graded_builder_scales_blocks_geometrically) {
    const auto plan = geom::street_graph_spec::graded(10.0, 3, 2.0);
    ASSERT_EQ(plan.xs.size(), 4u);
    EXPECT_EQ(plan.xs.front(), 0.0);
    EXPECT_EQ(plan.xs.back(), 10.0);
    // Widths 1:2:4 scaled to span 10.
    const double w0 = plan.xs[1] - plan.xs[0];
    const double w1 = plan.xs[2] - plan.xs[1];
    const double w2 = plan.xs[3] - plan.xs[2];
    EXPECT_NEAR(w1 / w0, 2.0, 1e-12);
    EXPECT_NEAR(w2 / w1, 2.0, 1e-12);
    // ratio = 1 is the uniform plan.
    const auto flat = geom::street_graph_spec::graded(12.0, 4, 1.0);
    const auto uniform = geom::street_graph_spec::uniform(12.0, 4);
    for (std::size_t i = 0; i < flat.xs.size(); ++i) {
        EXPECT_DOUBLE_EQ(flat.xs[i], uniform.xs[i]);
    }
    EXPECT_THROW(geom::street_graph_spec::graded(10.0, 3, 0.0), std::invalid_argument);
}

TEST(topology_spec, validate_rejects_structural_errors) {
    const double side = 10.0;
    auto ok = geom::street_graph_spec::uniform(side, 3);

    auto few = ok;
    few.ys = {5.0};
    EXPECT_THROW(geom::topology_spec::streets(few).validate(side), std::invalid_argument);

    auto unsorted = ok;
    std::swap(unsorted.xs[1], unsorted.xs[2]);
    EXPECT_THROW(geom::topology_spec::streets(unsorted).validate(side),
                 std::invalid_argument);

    auto outside = ok;
    outside.xs.back() = side + 1.0;
    EXPECT_THROW(geom::topology_spec::streets(outside).validate(side),
                 std::invalid_argument);

    auto bad_edge = ok;
    bad_edge.blocked.push_back({0, 0, 2, 0});  // not lattice-adjacent
    EXPECT_THROW(geom::topology_spec::streets(bad_edge).validate(side),
                 std::invalid_argument);

    auto oob_edge = ok;
    oob_edge.one_way.push_back({0, 0, 0, 9});
    EXPECT_THROW(geom::topology_spec::streets(oob_edge).validate(side),
                 std::invalid_argument);

    // Blocking every segment around a corner disconnects it.
    auto cut = ok;
    cut.blocked.push_back({0, 0, 1, 0});
    cut.blocked.push_back({0, 0, 0, 1});
    EXPECT_THROW(geom::topology_spec::streets(cut).validate(side), std::invalid_argument);
}

// ------------------------------------------------------------ graph checks --

TEST(street_graph, uniform_grid_structure_and_routing) {
    const auto plan = geom::street_graph_spec::uniform(12.0, 3);  // 4 x 4 nodes
    const geom::street_graph g(plan);
    EXPECT_EQ(g.node_count(), 16u);
    // Directed segments: 2 * (2 * 3 * 4) undirected grid edges.
    EXPECT_EQ(g.segment_count(), 48u);
    EXPECT_EQ(g.diameter(), 24.0);  // opposite corners: 6 hops of length 4

    // node_at is exact, nearest_node snaps deterministically.
    const auto at = g.node_at(g.node_pos(5));
    ASSERT_TRUE(at.has_value());
    EXPECT_EQ(*at, 5u);
    EXPECT_FALSE(g.node_at({1.0, 1.0}).has_value());
    EXPECT_EQ(g.nearest_node({0.1, 0.1}), 0u);
    // Equidistant from all four corners of the center block: lowest id wins.
    EXPECT_EQ(g.nearest_node({6.0, 6.0}), 5u);

    // next_hop walks a shortest path whose length matches route_length.
    std::uint32_t at_node = 0;
    double walked = 0.0;
    const std::uint32_t goal = 15;
    while (at_node != goal) {
        const std::uint32_t hop = g.next_hop(at_node, goal);
        ASSERT_TRUE(g.has_segment(at_node, hop));
        walked += manhattan::geom::dist(g.node_pos(at_node), g.node_pos(hop));
        at_node = hop;
    }
    EXPECT_DOUBLE_EQ(walked, g.route_length(0, 15));
    EXPECT_DOUBLE_EQ(walked, 24.0);
}

TEST(street_graph, one_way_and_blocked_edges_shape_routes) {
    auto plan = geom::street_graph_spec::uniform(12.0, 3);
    plan.blocked.push_back({1, 1, 2, 1});      // close a central segment
    plan.one_way.push_back({0, 0, 1, 0});      // eastbound only on the bottom row
    const geom::street_graph g(plan);

    const std::uint32_t a = *g.node_at({4.0, 4.0});   // (1,1)
    const std::uint32_t b = *g.node_at({8.0, 4.0});   // (2,1)
    EXPECT_FALSE(g.has_segment(a, b));
    EXPECT_FALSE(g.has_segment(b, a));
    // The blocked pair is still mutually reachable, via a detour.
    EXPECT_GT(g.route_length(a, b), 4.0);
    EXPECT_DOUBLE_EQ(g.route_length(a, b), 12.0);

    const std::uint32_t sw = *g.node_at({0.0, 0.0});
    const std::uint32_t east = *g.node_at({4.0, 0.0});
    EXPECT_TRUE(g.has_segment(sw, east));
    EXPECT_FALSE(g.has_segment(east, sw));   // reverse direction removed
    // Asymmetric shortest paths: going back must detour around the one-way.
    EXPECT_DOUBLE_EQ(g.route_length(sw, east), 4.0);
    EXPECT_DOUBLE_EQ(g.route_length(east, sw), 12.0);
}

TEST(street_graph, compile_memoises_identical_specs) {
    const auto plan = geom::street_graph_spec::uniform(9.0, 3);
    const auto a = geom::street_graph::compile(plan);
    const auto b = geom::street_graph::compile(plan);
    EXPECT_EQ(a.get(), b.get());
    auto other = plan;
    other.one_way.push_back({0, 0, 1, 0});
    EXPECT_NE(geom::street_graph::compile(other).get(), a.get());
}

TEST(street_graph, blocked_fraction_is_seeded_and_connectivity_preserving) {
    const auto plan = geom::street_graph_spec::uniform(20.0, 5);
    const auto a = geom::with_blocked_fraction(plan, 0.25, 7);
    const auto b = geom::with_blocked_fraction(plan, 0.25, 7);
    EXPECT_EQ(a, b);  // pure function of (spec, fraction, seed)
    const auto c = geom::with_blocked_fraction(plan, 0.25, 8);
    EXPECT_NE(a.blocked, c.blocked);  // seed matters
    EXPECT_FALSE(a.blocked.empty());
    // Still strongly connected — validate() would throw otherwise.
    EXPECT_NO_THROW(geom::topology_spec::streets(a).validate(20.0));
    // fraction 0 is a no-op; out-of-range fractions are rejected.
    EXPECT_TRUE(geom::with_blocked_fraction(plan, 0.0, 7).blocked.empty());
    EXPECT_THROW((void)geom::with_blocked_fraction(plan, 1.0, 7), std::invalid_argument);
}

// -------------------------------------------------------------- graph MRWP --

std::shared_ptr<const mobility::mobility_model> street_model(const geom::street_graph_spec& plan,
                                                             double side) {
    return mobility::make_model(mobility::model_kind::mrwp,
                                geom::topology_spec::streets(plan), side, {});
}

/// Assert \p s sits on a street of \p g and, when mid-segment, that its
/// current directed hop exists (so one-way and blocked constraints hold).
void assert_on_street(const geom::street_graph& g, const mobility::trip_state& s,
                      const geom::street_graph_spec& plan) {
    if (g.node_at(s.pos).has_value()) {
        return;  // exactly at an intersection
    }
    const bool on_vertical =
        std::find(plan.xs.begin(), plan.xs.end(), s.pos.x) != plan.xs.end();
    const bool on_horizontal =
        std::find(plan.ys.begin(), plan.ys.end(), s.pos.y) != plan.ys.end();
    ASSERT_TRUE(on_vertical || on_horizontal)
        << "agent off-street at (" << s.pos.x << ", " << s.pos.y << ")";
    // The hop under the agent: its waypoint is one endpoint, the neighbour
    // on the far side of pos is the other. That directed segment must exist.
    const auto to = g.node_at(s.waypoint);
    ASSERT_TRUE(to.has_value());
    const manhattan::geom::vec2 w = g.node_pos(*to);
    // Find the other endpoint by scanning the axis the agent travels on.
    std::uint32_t from = *to;
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        const auto node = static_cast<std::uint32_t>(v);
        const manhattan::geom::vec2 p = g.node_pos(node);
        if (node == *to) {
            continue;
        }
        const bool between_x = (p.x <= s.pos.x && s.pos.x <= w.x) ||
                               (w.x <= s.pos.x && s.pos.x <= p.x);
        const bool between_y = (p.y <= s.pos.y && s.pos.y <= w.y) ||
                               (w.y <= s.pos.y && s.pos.y <= p.y);
        if (p.x == w.x && s.pos.x == w.x && between_y && g.has_segment(node, *to)) {
            from = node;
        }
        if (p.y == w.y && s.pos.y == w.y && between_x && g.has_segment(node, *to)) {
            from = node;
        }
    }
    EXPECT_NE(from, *to) << "no feasible directed segment carries the agent at ("
                         << s.pos.x << ", " << s.pos.y << ")";
}

TEST(graph_mrwp, agents_stay_on_streets_and_respect_blocked_edges) {
    auto plan = geom::street_graph_spec::uniform(20.0, 4);
    plan.blocked.push_back({1, 2, 2, 2});
    plan.one_way.push_back({3, 1, 3, 2});
    const auto model = street_model(plan, 20.0);
    const geom::street_graph g(plan);

    mobility::walker w(model, 64, 0.9, rng{123});
    for (int step = 0; step < 200; ++step) {
        w.step();
        for (std::size_t i = 0; i < w.size(); ++i) {
            const mobility::trip_state s = w.agent(i);
            assert_on_street(g, s, plan);
            // Way points and destinations are exact intersection coordinates.
            ASSERT_TRUE(g.node_at(s.waypoint).has_value());
            ASSERT_TRUE(g.node_at(s.dest).has_value());
        }
    }
}

TEST(graph_mrwp, fresh_starts_snap_to_the_graph) {
    const auto plan = geom::street_graph_spec::uniform(20.0, 4);
    const auto model = street_model(plan, 20.0);
    const geom::street_graph g(plan);
    mobility::walker w(model, 32, 1.0, rng{5}, mobility::start_mode::uniform_fresh);
    // After enough travel every agent must have reached the graph and stayed.
    w.advance_time(60.0);
    for (std::size_t i = 0; i < w.size(); ++i) {
        assert_on_street(g, w.agent(i), plan);
    }
}

TEST(graph_mrwp, stationary_states_lie_on_routes) {
    auto plan = geom::street_graph_spec::uniform(20.0, 4);
    plan.blocked.push_back({0, 2, 1, 2});
    const auto model = street_model(plan, 20.0);
    const geom::street_graph g(plan);
    rng gen{17};
    for (int i = 0; i < 500; ++i) {
        const mobility::trip_state s = model->stationary_state(gen);
        assert_on_street(g, s, plan);
        ASSERT_TRUE(g.node_at(s.dest).has_value());
        ASSERT_TRUE(g.node_at(s.waypoint).has_value());
    }
    EXPECT_TRUE(model->exact_stationary_sampler());
    EXPECT_EQ(model->name(), "graph_mrwp");
}

// ------------------------------------------------- determinism contracts --

/// Canonical all-integral text of a scenario outcome (bit-identity oracle:
/// equal bytes == identical spread results).
std::string outcome_text(const core::scenario& sc) {
    const core::scenario_outcome out = core::run_scenario(sc);
    std::ostringstream text;
    text << "steps " << out.spread.steps << " completed " << int{out.spread.completed}
         << '\n';
    for (const core::message_result& m : out.spread.messages) {
        text << "msg t " << m.flooding_time << " informed " << m.informed_count
             << " sources";
        for (const std::uint32_t s : m.sources) {
            text << ' ' << s;
        }
        text << " informed_at";
        for (const std::uint32_t v : m.informed_at) {
            text << ' ' << v;
        }
        text << '\n';
    }
    return text.str();
}

core::scenario street_scenario() {
    core::scenario sc;
    sc.params = {400, 20.0, 5.0, 1.0};
    auto plan = geom::street_graph_spec::graded(20.0, 4, 1.3);
    plan.blocked.push_back({1, 2, 2, 2});
    plan.one_way.push_back({0, 1, 1, 1});
    sc.topology = geom::topology_spec::streets(std::move(plan));
    sc.seed = 4242;
    sc.max_steps = 5000;
    return sc;
}

TEST(topology_determinism, street_scenario_is_bit_identical_serial_vs_parallel) {
    const core::scenario base = street_scenario();
    const std::string serial = outcome_text(base);
    for (const std::size_t intra : {std::size_t{2}, std::size_t{8}}) {
        core::scenario sc = base;
        sc.intra_threads = intra;
        EXPECT_EQ(outcome_text(sc), serial) << "intra_threads=" << intra;
    }
    // Replica fan-out at 1/2/8 worker threads must agree replica-for-replica.
    const auto reference = engine::run_replicas(base, 3, {.threads = 1});
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        const auto parallel = engine::run_replicas(base, 3, {.threads = threads});
        ASSERT_EQ(parallel.size(), reference.size());
        for (std::size_t r = 0; r < reference.size(); ++r) {
            EXPECT_EQ(parallel[r].spread.steps, reference[r].spread.steps);
            EXPECT_EQ(parallel[r].flood.flooding_time, reference[r].flood.flooding_time);
            EXPECT_EQ(parallel[r].spread.messages.front().informed_at,
                      reference[r].spread.messages.front().informed_at);
        }
    }
}

TEST(topology_determinism, explicit_manhattan_topology_matches_legacy_path_bytewise) {
    core::scenario legacy;
    legacy.params = core::net_params::standard_case(400, 5.0, 1.0);
    legacy.seed = 77;
    legacy.max_steps = 5000;

    core::scenario explicit_grid = legacy;
    explicit_grid.topology = geom::topology_spec::manhattan();
    EXPECT_EQ(outcome_text(explicit_grid), outcome_text(legacy));
}

TEST(topology_determinism, street_sweep_runs_end_to_end_and_labels_annotate) {
    engine::sweep_spec spec;
    spec.base = street_scenario();
    spec.base.params.n = 200;
    spec.standard_case = false;
    spec.repetitions = 2;
    spec.speed_factor = {1.0};
    const auto rows_serial = engine::run_sweep(spec, {.threads = 1});
    const auto rows_parallel = engine::run_sweep(spec, {.threads = 4});
    ASSERT_EQ(rows_serial.rows.size(), 1u);
    EXPECT_EQ(rows_serial.rows[0].times, rows_parallel.rows[0].times);
    const std::string& label = rows_serial.rows[0].point.label;
    EXPECT_NE(label.find("topo=streets"), std::string::npos) << label;
    EXPECT_NE(label.find("blocked=1"), std::string::npos) << label;
    EXPECT_NE(label.find("oneway=1"), std::string::npos) << label;
}

// ------------------------------------------------------------ fingerprints --

engine::sweep_spec pinned_spec() {
    engine::sweep_spec spec;
    spec.base.params = core::net_params::standard_case(4000, 9.1, 0.5);
    spec.base.seed = 42;
    spec.repetitions = 4;
    spec.n = {4000, 8000};
    spec.speed_factor = {0.5, 1.0};
    return spec;
}

TEST(topology_fingerprint, pure_grid_fingerprints_are_unchanged_from_pr9) {
    // Pinned against the engine BEFORE the topology API existed: these exact
    // hex values were computed on the previous commit. If either changes,
    // existing manifests, fabric checkpoints and cached daemon results stop
    // resuming — that is a breaking change, not a refactor detail.
    EXPECT_EQ(engine::fingerprint_hex(engine::sweep_fingerprint(pinned_spec())),
              "aa94a134170dec9c");

    engine::sweep_spec spread = pinned_spec();
    spread.base.model = mobility::model_kind::rwp;
    spread.base.mode = core::propagation::gossip;
    spread.base.gossip_p = 0.25;
    spread.base.spread = spread.base.effective_spread();
    EXPECT_EQ(engine::fingerprint_hex(engine::sweep_fingerprint(spread)),
              "6e80e9637ceb3185");
}

TEST(topology_fingerprint, street_topology_and_trace_extend_the_hash) {
    const auto base = pinned_spec();
    const std::uint64_t grid_fp = engine::sweep_fingerprint(base);

    engine::sweep_spec streets = base;
    streets.base.topology =
        geom::topology_spec::streets(geom::street_graph_spec::uniform(60.0, 4));
    const std::uint64_t street_fp = engine::sweep_fingerprint(streets);
    EXPECT_NE(street_fp, grid_fp);

    // Every street field is output-affecting: blocking one segment moves it.
    engine::sweep_spec blocked = streets;
    blocked.base.topology.street.blocked.push_back({0, 0, 1, 0});
    EXPECT_NE(engine::sweep_fingerprint(blocked), street_fp);
    engine::sweep_spec oneway = streets;
    oneway.base.topology.street.one_way.push_back({0, 0, 1, 0});
    EXPECT_NE(engine::sweep_fingerprint(oneway), street_fp);

    // The diff walk mirrors the hash walk and names the field.
    const std::string diff = engine::first_spec_difference(
        streets.expand(), streets.repetitions, blocked.expand(), blocked.repetitions);
    EXPECT_NE(diff.find("topology.blocked"), std::string::npos) << diff;

    // A trace tour is hashed only under the trace_replay kind.
    engine::sweep_spec traced = base;
    traced.base.model = mobility::model_kind::trace_replay;
    traced.base.model_opts.trace =
        std::make_shared<const std::vector<manhattan::geom::vec2>>(
            std::vector<manhattan::geom::vec2>{{0.0, 0.0}, {5.0, 0.0}, {5.0, 5.0}});
    const std::uint64_t traced_fp = engine::sweep_fingerprint(traced);
    engine::sweep_spec retoured = traced;
    retoured.base.model_opts.trace =
        std::make_shared<const std::vector<manhattan::geom::vec2>>(
            std::vector<manhattan::geom::vec2>{{0.0, 0.0}, {6.0, 0.0}, {6.0, 5.0}});
    EXPECT_NE(engine::sweep_fingerprint(retoured), traced_fp);
}

// ------------------------------------------------------------- sweep axes --

TEST(topology_axes, expand_materialises_street_plans_per_point) {
    engine::sweep_spec spec;
    spec.base.params = {300, 20.0, 5.0, 1.0};
    spec.base.seed = 9;
    spec.standard_case = false;
    spec.repetitions = 1;
    spec.street_blocks = 4;
    spec.block_ratio = {1.0, 1.5};
    spec.blocked_fraction = {0.0, 0.2};
    const auto points = spec.expand();
    ASSERT_EQ(points.size(), 4u);
    std::set<std::uint64_t> fingerprints;
    for (const auto& point : points) {
        EXPECT_FALSE(point.sc.topology.is_grid());
        EXPECT_EQ(point.sc.topology.street.xs.size(), 5u);
        EXPECT_NO_THROW(point.sc.topology.validate(point.sc.params.side));
        engine::sweep_spec one;
        one.base = point.sc;
        one.repetitions = 1;
        fingerprints.insert(engine::sweep_fingerprint(one));
    }
    EXPECT_EQ(fingerprints.size(), 4u);  // every point is a distinct workload
    // blocked_fraction > 0 actually blocked something.
    EXPECT_TRUE(points[0].sc.topology.street.blocked.empty());
    EXPECT_FALSE(points[1].sc.topology.street.blocked.empty());
}

TEST(topology_axes, expand_rejects_street_topology_with_grid_only_models) {
    engine::sweep_spec spec;
    spec.base.params = {300, 20.0, 5.0, 1.0};
    spec.standard_case = false;
    spec.base.model = mobility::model_kind::random_walk;
    spec.blocked_fraction = {0.1};
    EXPECT_THROW((void)spec.expand(), std::invalid_argument);
    EXPECT_THROW((void)mobility::make_model(mobility::model_kind::random_walk,
                                            geom::topology_spec::streets(
                                                geom::street_graph_spec::uniform(20.0, 4)),
                                            20.0, {}),
                 std::invalid_argument);
}

// ------------------------------------------------------------ trace replay --

TEST(trace_replay, validates_its_tour) {
    const auto tour = [](std::vector<manhattan::geom::vec2> pts) {
        return std::make_shared<const std::vector<manhattan::geom::vec2>>(std::move(pts));
    };
    EXPECT_THROW(mobility::trace_replay(10.0, nullptr), std::invalid_argument);
    EXPECT_THROW(mobility::trace_replay(10.0, tour({{1.0, 1.0}})), std::invalid_argument);
    EXPECT_THROW(mobility::trace_replay(10.0, tour({{1.0, 1.0}, {1.0, 1.0}})),
                 std::invalid_argument);
    EXPECT_THROW(mobility::trace_replay(10.0, tour({{1.0, 1.0}, {11.0, 1.0}})),
                 std::invalid_argument);
    EXPECT_NO_THROW(mobility::trace_replay(10.0, tour({{1.0, 1.0}, {9.0, 1.0}})));
    // The factory requires trace data for the trace kind and keeps the model
    // grid-only.
    EXPECT_THROW((void)mobility::make_model(mobility::model_kind::trace_replay, 10.0, {}),
                 std::invalid_argument);
    mobility::model_options opts;
    opts.trace = tour({{1.0, 1.0}, {9.0, 1.0}});
    EXPECT_THROW((void)mobility::make_model(mobility::model_kind::trace_replay,
                                            geom::topology_spec::streets(
                                                geom::street_graph_spec::uniform(10.0, 3)),
                                            10.0, opts),
                 std::invalid_argument);
    EXPECT_EQ(mobility::parse_model_kind("trace"), mobility::model_kind::trace_replay);
    EXPECT_EQ(mobility::model_kind_name(mobility::model_kind::trace_replay), "trace");
}

TEST(trace_replay, loops_the_tour_without_consuming_randomness) {
    mobility::model_options opts;
    opts.trace = std::make_shared<const std::vector<manhattan::geom::vec2>>(
        std::vector<manhattan::geom::vec2>{{1.0, 1.0}, {7.0, 1.0}, {7.0, 5.0}});
    const auto model = mobility::make_model(mobility::model_kind::trace_replay, 10.0, opts);

    mobility::trip_state s;
    s.pos = {1.0, 1.0};
    rng gen{3};
    rng untouched{3};
    model->begin_trip(s, gen);
    EXPECT_EQ(s.dest.x, 7.0);
    EXPECT_EQ(s.dest.y, 1.0);
    s.pos = s.dest;
    model->begin_trip(s, gen);
    EXPECT_EQ(s.dest.x, 7.0);
    EXPECT_EQ(s.dest.y, 5.0);
    s.pos = s.dest;
    model->begin_trip(s, gen);
    EXPECT_EQ(s.dest.x, 1.0);  // wraps back to the first vertex
    // On-tour trips drew nothing: the stream equals a never-used twin's.
    EXPECT_EQ(gen.uniform01(), untouched.uniform01());
}

TEST(trace_replay, scenario_runs_bit_identically_at_every_parallelism) {
    core::scenario sc;
    sc.params = {150, 12.0, 4.0, 1.0};
    sc.model = mobility::model_kind::trace_replay;
    sc.model_opts.trace = std::make_shared<const std::vector<manhattan::geom::vec2>>(
        std::vector<manhattan::geom::vec2>{
            {1.0, 1.0}, {11.0, 1.0}, {11.0, 11.0}, {1.0, 11.0}});
    sc.seed = 31;
    sc.max_steps = 4000;
    const std::string serial = outcome_text(sc);
    for (const std::size_t intra : {std::size_t{2}, std::size_t{8}}) {
        core::scenario parallel = sc;
        parallel.intra_threads = intra;
        EXPECT_EQ(outcome_text(parallel), serial) << "intra_threads=" << intra;
    }
}

// ------------------------------------------------------------ fabric round --

TEST(topology_fabric, street_and_trace_points_survive_the_spec_file_round_trip) {
    engine::sweep_spec spec;
    spec.base = street_scenario();
    spec.standard_case = false;
    spec.repetitions = 2;
    spec.speed_factor = {0.5, 1.0};

    engine::fabric_spec fabric;
    fabric.points = spec.expand();
    fabric.repetitions = spec.repetitions;
    fabric.batch = 1;
    fabric.fingerprint = engine::sweep_fingerprint(fabric.points, fabric.repetitions);

    // parse re-fingerprints the points and throws on any drift, so a clean
    // round trip certifies byte-exact topology serialization.
    const engine::fabric_spec back =
        engine::parse_fabric_spec(engine::serialize_fabric_spec(fabric));
    EXPECT_EQ(back.fingerprint, fabric.fingerprint);
    ASSERT_EQ(back.points.size(), fabric.points.size());
    for (std::size_t i = 0; i < back.points.size(); ++i) {
        EXPECT_EQ(back.points[i].sc.topology, fabric.points[i].sc.topology);
        EXPECT_EQ(back.points[i].label, fabric.points[i].label);
    }
    EXPECT_TRUE(engine::first_spec_difference(fabric.points, fabric.repetitions,
                                              back.points, back.repetitions)
                    .empty());

    // Same exercise for a trace workload.
    engine::fabric_spec traced;
    core::scenario tsc;
    tsc.params = {100, 12.0, 4.0, 1.0};
    tsc.model = mobility::model_kind::trace_replay;
    tsc.model_opts.trace = std::make_shared<const std::vector<manhattan::geom::vec2>>(
        std::vector<manhattan::geom::vec2>{{1.0, 1.0}, {11.0, 1.0}, {6.0, 9.0}});
    traced.points.push_back({tsc, 0, "trace point"});
    traced.repetitions = 1;
    traced.batch = 1;
    traced.fingerprint = engine::sweep_fingerprint(traced.points, 1);
    const engine::fabric_spec traced_back =
        engine::parse_fabric_spec(engine::serialize_fabric_spec(traced));
    ASSERT_NE(traced_back.points[0].sc.model_opts.trace, nullptr);
    EXPECT_EQ(*traced_back.points[0].sc.model_opts.trace, *tsc.model_opts.trace);
}

}  // namespace
