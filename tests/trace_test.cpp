// Tests for trajectory recording, the temporal-reachability oracle, the
// Lemma 16 meeting machinery, and the bootstrap/two-sample statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/flooding.h"
#include "core/meetings.h"
#include "core/params.h"
#include "graph/temporal.h"
#include "mobility/mrwp.h"
#include "mobility/static_model.h"
#include "mobility/trace.h"
#include "mobility/walker.h"
#include "stats/bootstrap.h"

namespace {

namespace core = manhattan::core;
namespace graph = manhattan::graph;
namespace mobility = manhattan::mobility;
namespace stats = manhattan::stats;
using manhattan::geom::vec2;
using manhattan::rng::rng;

TEST(trace_test, construction_validates) {
    EXPECT_THROW((void)mobility::trajectory_recorder(0), std::invalid_argument);
}

TEST(trace_test, capture_and_frame_access) {
    mobility::trajectory_recorder rec(2);
    EXPECT_EQ(rec.frame_count(), 0u);
    rec.capture(std::vector<vec2>{{1, 1}, {2, 2}});
    rec.capture(std::vector<vec2>{{1, 2}, {2, 3}});
    EXPECT_EQ(rec.frame_count(), 2u);
    EXPECT_EQ(rec.frame(0)[0], (vec2{1, 1}));
    EXPECT_EQ(rec.frame(1)[1], (vec2{2, 3}));
    EXPECT_THROW((void)rec.frame(2), std::out_of_range);
    EXPECT_THROW((void)rec.capture(std::vector<vec2>{{1, 1}}), std::invalid_argument);
}

TEST(trace_test, path_of_and_length) {
    mobility::trajectory_recorder rec(2);
    rec.capture(std::vector<vec2>{{0, 0}, {5, 5}});
    rec.capture(std::vector<vec2>{{3, 4}, {5, 5}});
    const auto path = rec.path_of(0);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[1], (vec2{3, 4}));
    EXPECT_DOUBLE_EQ(rec.path_length(0), 5.0);
    EXPECT_DOUBLE_EQ(rec.path_length(1), 0.0);
    EXPECT_THROW((void)rec.path_of(2), std::out_of_range);
}

TEST(trace_test, path_csv_format) {
    mobility::trajectory_recorder rec(1);
    rec.capture(std::vector<vec2>{{1.5, 2.5}});
    const auto csv = rec.path_csv(0);
    EXPECT_EQ(csv.substr(0, 10), "frame,x,y\n");
    EXPECT_NE(csv.find("0,1.5"), std::string::npos);
}

TEST(trace_test, records_walker_motion) {
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(50.0);
    mobility::walker w(model, 5, 1.0, rng{3});
    mobility::trajectory_recorder rec(5);
    rec.capture(w);
    for (int t = 0; t < 10; ++t) {
        w.step();
        rec.capture(w);
    }
    EXPECT_EQ(rec.frame_count(), 11u);
    // Each recorded step moves each agent at most v in Euclidean norm.
    for (std::size_t a = 0; a < 5; ++a) {
        const auto path = rec.path_of(a);
        for (std::size_t f = 1; f < path.size(); ++f) {
            ASSERT_LE(manhattan::geom::dist(path[f - 1], path[f]), 1.0 + 1e-9);
        }
    }
}

TEST(longest_inward_run_test, pure_eastward_run) {
    // SW-quadrant start moving east: the whole displacement is one run.
    const std::vector<vec2> path = {{1, 1}, {2, 1}, {3, 1}, {4, 1}};
    EXPECT_DOUBLE_EQ(mobility::longest_inward_run(path, 100.0), 3.0);
}

TEST(longest_inward_run_test, outward_motion_does_not_count) {
    const std::vector<vec2> path = {{10, 10}, {8, 10}, {6, 10}};  // west = outward in SW
    EXPECT_DOUBLE_EQ(mobility::longest_inward_run(path, 100.0), 0.0);
}

TEST(longest_inward_run_test, turns_reset_the_run) {
    const std::vector<vec2> path = {{1, 1}, {3, 1}, {3, 3}, {8, 3}};
    // East 2, North 2, East 5: the best single run is the final 5.
    EXPECT_DOUBLE_EQ(mobility::longest_inward_run(path, 100.0), 5.0);
}

TEST(longest_inward_run_test, mirrored_quadrants) {
    // NE-quadrant start moving south-west towards the center: inward.
    const std::vector<vec2> path = {{90, 90}, {85, 90}, {80, 90}};
    EXPECT_DOUBLE_EQ(mobility::longest_inward_run(path, 100.0), 10.0);
    const std::vector<vec2> up = {{90, 90}, {95, 90}};  // outward (east in NE)
    EXPECT_DOUBLE_EQ(mobility::longest_inward_run(up, 100.0), 0.0);
}

TEST(longest_inward_run_test, short_paths) {
    EXPECT_DOUBLE_EQ(mobility::longest_inward_run(std::vector<vec2>{{1, 1}}, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(mobility::longest_inward_run(std::vector<vec2>{}, 10.0), 0.0);
}

// ---------------------------------------------------------------------------
// Temporal reachability oracle.
// ---------------------------------------------------------------------------

TEST(temporal_test, validates_arguments) {
    mobility::trajectory_recorder empty(3);
    EXPECT_THROW((void)graph::temporal_flood(empty, 1.0, 10.0, 0), std::invalid_argument);
    mobility::trajectory_recorder rec(2);
    rec.capture(std::vector<vec2>{{1, 1}, {2, 2}});
    EXPECT_THROW((void)graph::temporal_flood(rec, 1.0, 10.0, 5), std::invalid_argument);
    EXPECT_THROW((void)graph::temporal_flood(rec, 0.0, 10.0, 0), std::invalid_argument);
}

TEST(temporal_test, static_chain_one_hop_per_frame) {
    mobility::trajectory_recorder rec(3);
    const std::vector<vec2> frozen = {{1, 1}, {2, 1}, {3, 1}};
    for (int f = 0; f < 4; ++f) {
        rec.capture(frozen);
    }
    const auto result = graph::temporal_flood(rec, 1.0, 10.0, 0);
    EXPECT_TRUE(result.all_reached);
    EXPECT_EQ(result.reached_at[0], 0u);
    EXPECT_EQ(result.reached_at[1], 1u);
    EXPECT_EQ(result.reached_at[2], 2u);
    EXPECT_EQ(graph::temporal_eccentricity(result), 2u);
}

TEST(temporal_test, too_few_frames_leaves_agents_unreached) {
    mobility::trajectory_recorder rec(3);
    const std::vector<vec2> frozen = {{1, 1}, {2, 1}, {3, 1}};
    rec.capture(frozen);
    rec.capture(frozen);  // only one transmission frame
    const auto result = graph::temporal_flood(rec, 1.0, 10.0, 0);
    EXPECT_FALSE(result.all_reached);
    EXPECT_EQ(result.reached_at[2], graph::temporal_unreached);
    EXPECT_EQ(result.reached_count, 2u);
}

TEST(temporal_test, ferrying_message_across_a_gap) {
    // A mobile carrier picks the message up near the source and delivers it
    // to a distant agent: classic opportunistic forwarding — reachability
    // exists in the temporal graph though no snapshot connects the ends.
    mobility::trajectory_recorder rec(3);
    rec.capture(std::vector<vec2>{{0, 0}, {2, 0}, {9, 0}});    // initial gap everywhere
    rec.capture(std::vector<vec2>{{0, 0}, {0.5, 0}, {9, 0}});  // carrier meets the source
    rec.capture(std::vector<vec2>{{0, 0}, {8.5, 0}, {9, 0}});  // carrier reaches target
    const auto result = graph::temporal_flood(rec, 1.0, 10.0, 0);
    EXPECT_TRUE(result.all_reached);
    EXPECT_EQ(result.reached_at[1], 1u);
    EXPECT_EQ(result.reached_at[2], 2u);
}

TEST(temporal_test, oracle_matches_flooding_sim_exactly) {
    // The load-bearing cross-validation: record the walker trajectory that
    // flooding_sim itself produces (same model, same seed), re-derive the
    // informing times with the independent temporal oracle, and require
    // bit-for-bit agreement.
    const double side = 60.0;
    const double radius = 6.0;
    const std::size_t n = 250;
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(side);

    core::flood_config cfg;
    cfg.max_steps = 4000;
    core::flooding_sim sim(mobility::walker(model, n, 1.0, rng{91}), radius, cfg);
    mobility::trajectory_recorder rec(n);
    rec.capture(sim.agents());
    while (!sim.all_informed() && sim.steps_taken() < cfg.max_steps) {
        (void)sim.step();
        rec.capture(sim.agents());
    }
    ASSERT_TRUE(sim.all_informed());

    const auto oracle = graph::temporal_flood(rec, radius, side, cfg.source);
    ASSERT_TRUE(oracle.all_reached);

    // Compare against the sim's per-agent informing steps.
    core::flood_config cfg2 = cfg;
    core::flooding_sim sim2(mobility::walker(model, n, 1.0, rng{91}), radius, cfg2);
    const auto result = sim2.run();
    ASSERT_EQ(result.informed_at.size(), oracle.reached_at.size());
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(result.informed_at[i], oracle.reached_at[i]) << "agent " << i;
    }
}

// ---------------------------------------------------------------------------
// Meetings / suburb rescue (Lemma 16 machinery).
// ---------------------------------------------------------------------------

TEST(rescue_test, validates_arguments) {
    const std::size_t n = 2000;
    const double side = std::sqrt(static_cast<double>(n));
    const double radius = 3.0 * std::sqrt(std::log(static_cast<double>(n)));
    const core::cell_partition cells(n, side, radius);
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(side);
    mobility::walker w(model, n, 1.0, rng{7});
    core::rescue_config cfg;
    cfg.meeting_radius = 0.0;
    EXPECT_THROW((void)core::measure_suburb_rescue(w, cells, cfg), std::invalid_argument);

    auto wrong_model = std::make_shared<mobility::manhattan_random_waypoint>(side * 2);
    mobility::walker w2(wrong_model, 10, 1.0, rng{8});
    cfg.meeting_radius = 1.0;
    EXPECT_THROW((void)core::measure_suburb_rescue(w2, cells, cfg), std::invalid_argument);
}

TEST(rescue_test, suburb_agents_meet_central_agents) {
    const std::size_t n = 20'000;
    const double side = std::sqrt(static_cast<double>(n));
    const double radius = 3.0 * std::sqrt(std::log(static_cast<double>(n)));
    const core::cell_partition cells(n, side, radius);
    ASSERT_GT(cells.suburb_cell_count(), 0u);

    auto model = std::make_shared<mobility::manhattan_random_waypoint>(side);
    mobility::walker w(model, n, core::paper::speed_bound(radius), rng{9});
    core::rescue_config cfg;
    cfg.meeting_radius = core::paper::meeting_radius(radius);
    cfg.max_steps = 20'000;
    const auto result = core::measure_suburb_rescue(w, cells, cfg);
    ASSERT_GT(result.watched.size(), 0u);
    EXPECT_TRUE(result.all_met);
    // Lemma 16's window: tau = 590 S / v — a very loose envelope here.
    const double tau = core::paper::suburb_rescue_window(cells.suburb_diameter(),
                                                         core::paper::speed_bound(radius));
    for (const auto at : result.met_at) {
        ASSERT_NE(at, core::never_met);
        ASSERT_LE(static_cast<double>(at), tau);
    }
}

TEST(rescue_test, empty_suburb_is_trivially_met) {
    const std::size_t n = 2000;
    const double side = std::sqrt(static_cast<double>(n));
    const double radius = core::paper::large_radius_threshold(side, n);
    const core::cell_partition cells(n, side, radius);
    ASSERT_EQ(cells.suburb_cell_count(), 0u);
    auto model = std::make_shared<mobility::manhattan_random_waypoint>(side);
    mobility::walker w(model, n, 1.0, rng{10});
    core::rescue_config cfg;
    cfg.meeting_radius = 1.0;
    const auto result = core::measure_suburb_rescue(w, cells, cfg);
    EXPECT_TRUE(result.all_met);
    EXPECT_TRUE(result.watched.empty());
}

// ---------------------------------------------------------------------------
// Bootstrap / two-sample statistics.
// ---------------------------------------------------------------------------

TEST(bootstrap_test, validates_input) {
    rng gen{1};
    EXPECT_THROW((void)stats::bootstrap_mean_ci({}, 0.95, 100, gen), std::invalid_argument);
    const std::vector<double> xs = {1.0, 2.0};
    EXPECT_THROW((void)stats::bootstrap_mean_ci(xs, 1.5, 100, gen), std::invalid_argument);
    EXPECT_THROW((void)stats::bootstrap_mean_ci(xs, 0.95, 0, gen), std::invalid_argument);
}

TEST(bootstrap_test, ci_contains_true_mean_for_well_behaved_sample) {
    rng gen{2};
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i) {
        xs.push_back(gen.uniform(0.0, 10.0));
    }
    const auto ci = stats::bootstrap_mean_ci(xs, 0.99, 2000, gen);
    EXPECT_TRUE(ci.contains(5.0)) << "[" << ci.lo << ", " << ci.hi << "]";
    EXPECT_LT(ci.hi - ci.lo, 2.0);
    EXPECT_LE(ci.lo, ci.hi);
}

TEST(bootstrap_test, degenerate_sample_gives_point_interval) {
    rng gen{3};
    const std::vector<double> xs(50, 4.2);
    const auto ci = stats::bootstrap_mean_ci(xs, 0.95, 200, gen);
    EXPECT_DOUBLE_EQ(ci.lo, 4.2);
    EXPECT_DOUBLE_EQ(ci.hi, 4.2);
}

TEST(two_sample_ks_test, identical_distributions_pass) {
    rng gen{4};
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 5000; ++i) {
        a.push_back(gen.uniform01());
        b.push_back(gen.uniform01());
    }
    EXPECT_LT(stats::two_sample_ks(a, b), stats::two_sample_ks_critical(a.size(), b.size()));
}

TEST(two_sample_ks_test, shifted_distributions_fail) {
    rng gen{5};
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 5000; ++i) {
        a.push_back(gen.uniform01());
        b.push_back(gen.uniform01() + 0.1);
    }
    EXPECT_GT(stats::two_sample_ks(a, b), stats::two_sample_ks_critical(a.size(), b.size()));
}

TEST(two_sample_ks_test, validates_input) {
    const std::vector<double> xs = {1.0};
    EXPECT_THROW((void)stats::two_sample_ks({}, xs), std::invalid_argument);
    EXPECT_THROW((void)stats::two_sample_ks(xs, {}), std::invalid_argument);
}

TEST(two_sample_ks_test, exact_small_case) {
    const std::vector<double> a = {1.0, 2.0};
    const std::vector<double> b = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::two_sample_ks(a, b), 1.0);  // fully separated
}

}  // namespace
