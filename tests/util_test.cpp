// Unit tests for the util module: table rendering, heatmaps, CLI parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "util/cli.h"
#include "util/heatmap.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

namespace util = manhattan::util;

TEST(table_test, markdown_small_exact) {
    util::table t({"a", "bb"});
    t.add_row({"1", "2"});
    const std::string expected =
        "| a | bb |\n"
        "|--:|---:|\n"
        "| 1 |  2 |\n";
    EXPECT_EQ(t.markdown(), expected);
}

TEST(table_test, markdown_pads_to_widest_cell) {
    util::table t({"x"});
    t.add_row({"12345"});
    const std::string md = t.markdown();
    EXPECT_NE(md.find("| 12345 |"), std::string::npos);
    EXPECT_NE(md.find("|     x |"), std::string::npos);
}

TEST(table_test, left_alignment) {
    util::table t({"x"});
    t.add_row({"ab"});
    const std::string md = t.markdown(util::align::left);
    EXPECT_NE(md.find("| x  |"), std::string::npos);
    EXPECT_NE(md.find("| ab |"), std::string::npos);
}

TEST(table_test, short_rows_are_padded) {
    util::table t({"a", "b", "c"});
    t.add_row({"1"});
    EXPECT_EQ(t.row_count(), 1u);
    EXPECT_NO_THROW(t.markdown());
}

TEST(table_test, too_long_row_throws) {
    util::table t({"a"});
    EXPECT_THROW((void)t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(table_test, csv_quoting) {
    util::table t({"name", "value"});
    t.add_row({"with,comma", "with\"quote"});
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(table_test, fmt_doubles) {
    EXPECT_EQ(util::fmt(3.14159, 3), "3.14");
    EXPECT_EQ(util::fmt(1000000.0, 4), "1e+06");
    EXPECT_EQ(util::fmt(0.0), "0");
    EXPECT_EQ(util::fmt(std::nan(""), 4), "nan");
    EXPECT_EQ(util::fmt(1.0 / 0.0, 4), "inf");
}

TEST(table_test, fmt_integers_and_bools) {
    EXPECT_EQ(util::fmt(42), "42");
    EXPECT_EQ(util::fmt(std::size_t{7}), "7");
    EXPECT_EQ(util::fmt(-3LL), "-3");
    EXPECT_EQ(util::fmt_bool(true), "yes");
    EXPECT_EQ(util::fmt_bool(false), "no");
}

TEST(heatmap_test, construction_validates) {
    EXPECT_THROW((void)util::heatmap(0, 3), std::invalid_argument);
    EXPECT_THROW((void)util::heatmap(3, 0), std::invalid_argument);
}

TEST(heatmap_test, deposit_and_extrema) {
    util::heatmap h(2, 3);
    h.deposit(0, 0, 5.0);
    h.deposit(1, 2, -2.0);
    EXPECT_DOUBLE_EQ(h.max_value(), 5.0);
    EXPECT_DOUBLE_EQ(h.min_value(), -2.0);
    EXPECT_DOUBLE_EQ(h.at(0, 0), 5.0);
    EXPECT_THROW((void)h.at(2, 0), std::out_of_range);
}

TEST(heatmap_test, scale) {
    util::heatmap h(1, 2, 1.0);
    h.scale(3.0);
    EXPECT_DOUBLE_EQ(h.at(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(h.at(0, 1), 3.0);
}

TEST(heatmap_test, ascii_dimensions_and_extremes) {
    util::heatmap h(2, 4);
    h.deposit(0, 0, 1.0);
    const std::string art = h.ascii();
    // 2 lines of 4 chars + newlines.
    EXPECT_EQ(art.size(), 2u * 5u);
    // Max value renders darkest ('@'), min lightest (' ').
    EXPECT_NE(art.find('@'), std::string::npos);
    EXPECT_NE(art.find(' '), std::string::npos);
}

TEST(heatmap_test, ascii_renders_bottom_row_last) {
    util::heatmap h(2, 1);
    h.deposit(1, 0, 1.0);  // top row dark
    const std::string art = h.ascii();
    EXPECT_EQ(art[0], '@');   // first printed char = top row
    EXPECT_EQ(art[2], ' ');   // bottom row light
}

TEST(heatmap_test, csv_row_count) {
    util::heatmap h(3, 2, 1.5);
    const std::string csv = h.csv();
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(cli_test, parses_typed_values) {
    const char* argv[] = {"prog", "--n=500", "--speed=0.25", "--name=mrwp", "--verbose"};
    const util::cli_args args(5, argv);
    EXPECT_EQ(args.get_int("n", 0), 500);
    EXPECT_DOUBLE_EQ(args.get_double("speed", 0.0), 0.25);
    EXPECT_EQ(args.get_string("name", ""), "mrwp");
    EXPECT_TRUE(args.get_bool("verbose", false));
    EXPECT_TRUE(args.has("n"));
    EXPECT_FALSE(args.has("missing"));
}

TEST(cli_test, fallbacks) {
    const char* argv[] = {"prog"};
    const util::cli_args args(1, argv);
    EXPECT_EQ(args.get_int("n", 42), 42);
    EXPECT_DOUBLE_EQ(args.get_double("speed", 1.5), 1.5);
    EXPECT_EQ(args.get_string("name", "default"), "default");
    EXPECT_FALSE(args.get_bool("verbose", false));
}

TEST(cli_test, bool_spellings) {
    const char* argv[] = {"prog", "--a=true", "--b=yes", "--c=0", "--d=false"};
    const util::cli_args args(5, argv);
    EXPECT_TRUE(args.get_bool("a", false));
    EXPECT_TRUE(args.get_bool("b", false));
    EXPECT_FALSE(args.get_bool("c", true));
    EXPECT_FALSE(args.get_bool("d", true));
}

TEST(cli_test, rejects_positional_arguments) {
    const char* argv[] = {"prog", "oops"};
    EXPECT_THROW((void)util::cli_args(2, argv), std::invalid_argument);
}

TEST(timer_test, elapsed_is_monotone_nonnegative) {
    util::timer t;
    const double a = t.seconds();
    const double b = t.seconds();
    EXPECT_GE(a, 0.0);
    EXPECT_GE(b, a);
    t.reset();
    EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
