// Wire-format tests: JSON parse/dump round trips, the strictness contract
// (truncated documents, trailing garbage, type mismatches all throw), exact
// IEEE-754 bit survival for doubles (NaN payloads, infinities, denormals,
// negative zero), unknown-field tolerance, and full codec round trips for
// scenario / sweep_spec / sweep_row.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "engine/manifest.h"
#include "geom/street_graph.h"
#include "service/wire.h"

namespace {

namespace core = manhattan::core;
namespace engine = manhattan::engine;
namespace geom = manhattan::geom;
namespace mobility = manhattan::mobility;
namespace service = manhattan::service;

using service::json_value;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// ------------------------------------------------------------- JSON model --

TEST(Wire, DumpIsCompactAndOrdered) {
    json_value v = json_value::object();
    v.set("b", json_value::integer(2));
    v.set("a", json_value::boolean(true));
    json_value arr = json_value::array();
    arr.items.push_back(json_value::null());
    arr.items.push_back(json_value::string("x"));
    v.set("list", std::move(arr));
    EXPECT_EQ(service::dump(v), R"({"b":2,"a":true,"list":[null,"x"]})");
}

TEST(Wire, ParseRoundTripsDump) {
    const std::string text =
        R"({"n":1200,"name":"sweep","nested":{"flag":false,"items":[1,2,3]},"z":null})";
    const json_value v = service::parse_json(text);
    EXPECT_EQ(service::dump(v), text);
}

TEST(Wire, IntegersAreExactUint64) {
    const json_value v = service::parse_json("{\"big\":18446744073709551615}");
    EXPECT_EQ(service::u64_field(v, "big"), 18446744073709551615ULL);
}

TEST(Wire, StringEscapesRoundTrip) {
    json_value v = json_value::object();
    v.set("s", json_value::string("a\"b\\c\nd\te\x01f"));
    const json_value back = service::parse_json(service::dump(v));
    EXPECT_EQ(service::str_field(back, "s"), "a\"b\\c\nd\te\x01f");
}

TEST(Wire, UnicodeEscapesDecodeToUtf8) {
    const json_value v = service::parse_json(R"({"s":"\u00e9\ud83d\ude00"})");
    EXPECT_EQ(service::str_field(v, "s"), "\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Wire, ForeignFractionalNumbersParse) {
    // Our encoders never emit these, but a foreign peer's extra fields must
    // not break the parse.
    const json_value v = service::parse_json(R"({"x":-1.5e3,"y":0.25})");
    ASSERT_NE(v.find("x"), nullptr);
    EXPECT_EQ(v.find("x")->what, json_value::kind::number);
    EXPECT_DOUBLE_EQ(v.find("x")->real, -1500.0);
}

TEST(Wire, TruncatedDocumentsThrow) {
    for (const char* text : {"", "{", "{\"a\"", "{\"a\":", "{\"a\":1", "[1,2",
                             "\"abc", "{\"a\":1,", "tru", "{\"s\":\"\\u12\"}"}) {
        EXPECT_THROW((void)service::parse_json(text), service::wire_error) << text;
    }
}

TEST(Wire, TrailingGarbageThrows) {
    EXPECT_THROW((void)service::parse_json("{\"a\":1} extra"), service::wire_error);
    EXPECT_THROW((void)service::parse_json("1 2"), service::wire_error);
}

TEST(Wire, MalformedDocumentsThrow) {
    for (const char* text : {"{a:1}", "{\"a\" 1}", "[1 2]", "{\"a\":01x}",
                             "nul", "{\"s\":\"\x01\"}", "-"}) {
        EXPECT_THROW((void)service::parse_json(text), service::wire_error) << text;
    }
}

TEST(Wire, DeepNestingIsBounded) {
    std::string text(100, '[');
    text += std::string(100, ']');
    EXPECT_THROW((void)service::parse_json(text), service::wire_error);
}

TEST(Wire, DuplicateKeysKeepFirst) {
    const json_value v = service::parse_json(R"({"a":1,"a":2})");
    EXPECT_EQ(service::u64_field(v, "a"), 1u);
}

TEST(Wire, FieldAccessorsThrowOnMissingOrMistyped) {
    const json_value v = service::parse_json(R"({"n":3,"s":"x"})");
    EXPECT_THROW((void)service::u64_field(v, "absent"), service::wire_error);
    EXPECT_THROW((void)service::u64_field(v, "s"), service::wire_error);
    EXPECT_THROW((void)service::bool_field(v, "n"), service::wire_error);
    EXPECT_THROW((void)service::str_field(v, "n"), service::wire_error);
}

// ------------------------------------------------------------ f64 framing --

TEST(Wire, DoublesSurviveBitExactly) {
    const double denormal = std::numeric_limits<double>::denorm_min();
    const double nan_payload =
        std::bit_cast<double>(std::uint64_t{0x7ff8dead'beef0001ULL});
    for (const double v :
         {0.0, -0.0, 1.0, -1.0 / 3.0, denormal, -denormal,
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::quiet_NaN(), nan_payload,
          std::numeric_limits<double>::max(), std::numeric_limits<double>::min(),
          std::numeric_limits<double>::epsilon()}) {
        json_value obj = json_value::object();
        obj.set("v", service::encode_f64(v));
        const json_value back = service::parse_json(service::dump(obj));
        EXPECT_EQ(bits(service::f64_field(back, "v")), bits(v));
    }
}

TEST(Wire, NegativeZeroStaysDistinctFromZero) {
    EXPECT_NE(service::dump(service::encode_f64(-0.0)),
              service::dump(service::encode_f64(0.0)));
}

TEST(Wire, BadF64EncodingsThrow) {
    EXPECT_THROW((void)service::decode_f64(json_value::string("abc"), "v"),
                 service::wire_error);
    EXPECT_THROW((void)service::decode_f64(json_value::string("XYZ0123456789abc"), "v"),
                 service::wire_error);
    EXPECT_THROW((void)service::decode_f64(json_value::integer(1), "v"),
                 service::wire_error);
}

// ----------------------------------------------------------------- codecs --

core::scenario rich_scenario() {
    core::scenario sc;
    sc.params = core::net_params::standard_case(1200, 9.5, 0.75);
    sc.model = mobility::model_kind::random_walk;
    sc.model_opts.walk_step_radius = 1.25;
    sc.model_opts.direction_max_leg = 4.5;
    sc.mode = core::propagation::gossip;
    sc.gossip_p = 0.625;
    sc.source = core::source_placement::corner_ne;
    sc.seed = 0xdeadbeefcafef00dULL;
    sc.stationary_start = false;
    sc.warmup_time = 2.5;
    sc.max_steps = 12'345;
    sc.record_timeline = true;
    sc.with_cell_partition = false;
    sc.spread.stop = core::stop_rule::informed_fraction(0.9);
    core::message_spec first;
    first.sources = core::source_spec::at(core::source_placement::center_most, 3);
    first.spawn_step = 7;
    first.mode = core::propagation::per_component;
    core::message_spec second;
    second.sources = core::source_spec::agents({5, 9, 11});
    second.spawn_step = 0;
    second.mode = core::propagation::gossip;
    second.gossip_p = 0.5;
    second.gossip_seed = 77;
    second.source_seed = 78;
    sc.spread.messages = {first, second};
    return sc;
}

void expect_same_scenario(const core::scenario& a, const core::scenario& b) {
    EXPECT_EQ(a.topology, b.topology);
    if (a.model_opts.trace == nullptr || b.model_opts.trace == nullptr) {
        EXPECT_EQ(a.model_opts.trace == nullptr, b.model_opts.trace == nullptr);
    } else {
        ASSERT_EQ(a.model_opts.trace->size(), b.model_opts.trace->size());
        for (std::size_t i = 0; i < a.model_opts.trace->size(); ++i) {
            EXPECT_EQ(bits((*a.model_opts.trace)[i].x), bits((*b.model_opts.trace)[i].x));
            EXPECT_EQ(bits((*a.model_opts.trace)[i].y), bits((*b.model_opts.trace)[i].y));
        }
    }
    EXPECT_EQ(a.params.n, b.params.n);
    EXPECT_EQ(bits(a.params.side), bits(b.params.side));
    EXPECT_EQ(bits(a.params.radius), bits(b.params.radius));
    EXPECT_EQ(bits(a.params.speed), bits(b.params.speed));
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(bits(a.model_opts.walk_step_radius), bits(b.model_opts.walk_step_radius));
    EXPECT_EQ(bits(a.model_opts.direction_max_leg), bits(b.model_opts.direction_max_leg));
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(bits(a.gossip_p), bits(b.gossip_p));
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.stationary_start, b.stationary_start);
    EXPECT_EQ(bits(a.warmup_time), bits(b.warmup_time));
    EXPECT_EQ(a.max_steps, b.max_steps);
    EXPECT_EQ(a.record_timeline, b.record_timeline);
    EXPECT_EQ(a.with_cell_partition, b.with_cell_partition);
    EXPECT_EQ(a.spread.stop.how, b.spread.stop.how);
    EXPECT_EQ(bits(a.spread.stop.fraction), bits(b.spread.stop.fraction));
    EXPECT_EQ(a.spread.stop.steps, b.spread.stop.steps);
    ASSERT_EQ(a.spread.messages.size(), b.spread.messages.size());
    for (std::size_t i = 0; i < a.spread.messages.size(); ++i) {
        const auto& ma = a.spread.messages[i];
        const auto& mb = b.spread.messages[i];
        EXPECT_EQ(ma.sources.how, mb.sources.how);
        EXPECT_EQ(ma.sources.placement, mb.sources.placement);
        EXPECT_EQ(ma.sources.count, mb.sources.count);
        EXPECT_EQ(ma.sources.ids, mb.sources.ids);
        EXPECT_EQ(ma.spawn_step, mb.spawn_step);
        EXPECT_EQ(ma.mode, mb.mode);
        EXPECT_EQ(bits(ma.gossip_p), bits(mb.gossip_p));
        EXPECT_EQ(ma.gossip_seed, mb.gossip_seed);
        EXPECT_EQ(ma.source_seed, mb.source_seed);
    }
}

TEST(Wire, ScenarioRoundTrips) {
    const core::scenario sc = rich_scenario();
    const std::string text = service::dump(service::encode_scenario(sc));
    const core::scenario back = service::decode_scenario(service::parse_json(text));
    expect_same_scenario(sc, back);
}

TEST(Wire, ScenarioToleratesUnknownFields) {
    json_value v = service::encode_scenario(rich_scenario());
    v.set("future_knob", json_value::string("ignored"));
    v.set("other", json_value::integer(7));
    const core::scenario back = service::decode_scenario(v);
    expect_same_scenario(rich_scenario(), back);
}

TEST(Wire, ScenarioRejectsMissingField) {
    json_value v = service::encode_scenario(rich_scenario());
    json_value pruned = json_value::object();
    for (auto& [key, member] : v.members) {
        if (key != "seed") {
            pruned.set(key, std::move(member));
        }
    }
    EXPECT_THROW((void)service::decode_scenario(pruned), service::wire_error);
}

TEST(Wire, ScenarioRejectsUnknownEnumName) {
    json_value v = service::encode_scenario(rich_scenario());
    for (auto& [key, member] : v.members) {
        if (key == "mode") {
            member = json_value::string("telepathy");
        }
    }
    EXPECT_THROW((void)service::decode_scenario(v), service::wire_error);
}

engine::sweep_spec rich_spec() {
    engine::sweep_spec spec;
    spec.base = rich_scenario();
    spec.repetitions = 5;
    spec.standard_case = false;
    spec.n = {400, 900};
    spec.c1 = {2.5, 3.0};
    spec.speed_factor = {0.5, 1.0};
    spec.model = {mobility::model_kind::mrwp, mobility::model_kind::static_agents};
    spec.mode = {core::propagation::one_hop, core::propagation::gossip};
    spec.gossip_p = {0.25, 0.75};
    spec.num_sources = {1, 4};
    spec.num_messages = {2};
    return spec;
}

TEST(Wire, SweepSpecRoundTrips) {
    const engine::sweep_spec spec = rich_spec();
    const std::string text = service::dump(service::encode_sweep_spec(spec));
    const engine::sweep_spec back = service::decode_sweep_spec(service::parse_json(text));
    expect_same_scenario(spec.base, back.base);
    EXPECT_EQ(back.repetitions, spec.repetitions);
    EXPECT_EQ(back.standard_case, spec.standard_case);
    EXPECT_EQ(back.n, spec.n);
    EXPECT_EQ(back.c1, spec.c1);
    EXPECT_EQ(back.radius, spec.radius);
    EXPECT_EQ(back.speed, spec.speed);
    EXPECT_EQ(back.speed_factor, spec.speed_factor);
    EXPECT_EQ(back.model, spec.model);
    EXPECT_EQ(back.mode, spec.mode);
    EXPECT_EQ(back.gossip_p, spec.gossip_p);
    EXPECT_EQ(back.num_sources, spec.num_sources);
    EXPECT_EQ(back.num_messages, spec.num_messages);
}

TEST(Wire, SweepSpecEmptyAxesStayEmpty) {
    engine::sweep_spec spec;
    spec.base = rich_scenario();
    const engine::sweep_spec back =
        service::decode_sweep_spec(service::encode_sweep_spec(spec));
    EXPECT_TRUE(back.n.empty());
    EXPECT_TRUE(back.c1.empty());
    EXPECT_TRUE(back.model.empty());
    EXPECT_TRUE(back.num_messages.empty());
}

// ------------------------------------------------------- topology codecs --

core::scenario street_scenario() {
    core::scenario sc;
    sc.params = {800, 30.0, 7.0, 1.0};
    sc.model = mobility::model_kind::mrwp;
    sc.seed = 99;
    geom::street_graph_spec plan = geom::street_graph_spec::graded(30.0, 5, 1.5);
    plan.blocked.push_back({1, 1, 2, 1});
    plan.one_way.push_back({0, 0, 0, 1});
    sc.topology = geom::topology_spec::streets(std::move(plan));
    return sc;
}

TEST(Wire, ScenarioStreetTopologyRoundTripsExactly) {
    const core::scenario sc = street_scenario();
    const std::string text = service::dump(service::encode_scenario(sc));
    const core::scenario back = service::decode_scenario(service::parse_json(text));
    expect_same_scenario(sc, back);
    EXPECT_EQ(back.topology.kind, geom::topology_kind::street_graph);
    EXPECT_EQ(back.topology.street.blocked.size(), 1u);
    EXPECT_EQ(back.topology.street.one_way.size(), 1u);
}

TEST(Wire, ScenarioTraceTourRoundTripsExactly) {
    core::scenario sc = rich_scenario();
    sc.model = mobility::model_kind::trace_replay;
    sc.model_opts.trace = std::make_shared<const std::vector<manhattan::geom::vec2>>(
        std::vector<manhattan::geom::vec2>{{1.0, 2.0}, {5.5, 2.0}, {5.5, 9.25}});
    const core::scenario back =
        service::decode_scenario(service::parse_json(service::dump(service::encode_scenario(sc))));
    expect_same_scenario(sc, back);
}

TEST(Wire, PureGridScenarioOmitsTopologyMember) {
    // The byte-compat contract: a pure-grid non-trace scenario encodes
    // exactly as before the topology API existed.
    const std::string text = service::dump(service::encode_scenario(rich_scenario()));
    EXPECT_EQ(text.find("topology"), std::string::npos);
    EXPECT_EQ(text.find("\"trace\""), std::string::npos);
    const core::scenario back = service::decode_scenario(service::parse_json(text));
    EXPECT_TRUE(back.topology.is_grid());
    EXPECT_EQ(back.model_opts.trace, nullptr);
}

TEST(Wire, TopologyRejectsUnknownKindAndMalformedEdges) {
    json_value v = service::encode_scenario(street_scenario());
    for (auto& [key, member] : v.members) {
        if (key == "topology") {
            for (auto& [tkey, tmember] : member.members) {
                if (tkey == "kind") {
                    tmember = json_value::string("hyperbolic");
                }
            }
        }
    }
    EXPECT_THROW((void)service::decode_scenario(v), service::wire_error);

    json_value w = service::encode_scenario(street_scenario());
    for (auto& [key, member] : w.members) {
        if (key == "topology") {
            for (auto& [tkey, tmember] : member.members) {
                if (tkey == "blocked") {
                    tmember.items.front().items.pop_back();  // 3-element edge
                }
            }
        }
    }
    EXPECT_THROW((void)service::decode_scenario(w), service::wire_error);
}

TEST(Wire, SweepSpecTopologyAxesRoundTrip) {
    engine::sweep_spec spec;
    spec.base = rich_scenario();
    spec.base.model = mobility::model_kind::mrwp;
    spec.block_ratio = {1.0, 1.5};
    spec.blocked_fraction = {0.0, 0.125};
    spec.street_blocks = 5;
    const engine::sweep_spec back =
        service::decode_sweep_spec(service::encode_sweep_spec(spec));
    EXPECT_EQ(back.block_ratio, spec.block_ratio);
    EXPECT_EQ(back.blocked_fraction, spec.blocked_fraction);
    EXPECT_EQ(back.street_blocks, 5);

    // Absent axes decode to the defaults, and a pure-grid spec's encoding
    // contains neither the axes nor street_blocks.
    engine::sweep_spec plain;
    plain.base = rich_scenario();
    const std::string text = service::dump(service::encode_sweep_spec(plain));
    EXPECT_EQ(text.find("block"), std::string::npos);
    const engine::sweep_spec plain_back =
        service::decode_sweep_spec(service::parse_json(text));
    EXPECT_TRUE(plain_back.block_ratio.empty());
    EXPECT_TRUE(plain_back.blocked_fraction.empty());
    EXPECT_EQ(plain_back.street_blocks, 8);
}

TEST(Wire, SweepSpecPreservesFingerprint) {
    engine::sweep_spec spec = rich_spec();
    // expand() refuses a num_sources axis over explicit source id lists —
    // keep the rest of the rich grid and drop the conflicting axis.
    spec.num_sources.clear();
    const engine::sweep_spec back =
        service::decode_sweep_spec(service::encode_sweep_spec(spec));
    const auto points = spec.expand();
    const auto back_points = back.expand();
    EXPECT_EQ(engine::sweep_fingerprint(points, spec.repetitions),
              engine::sweep_fingerprint(back_points, back.repetitions));
}

engine::sweep_row rich_row() {
    engine::sweep_row row;
    row.point.sc = rich_scenario();
    row.point.index = 3;
    row.point.label = "n=1200 R=9.50";
    row.times = {10.0, 12.0, std::numeric_limits<double>::infinity()};
    row.summary.count = 3;
    row.summary.mean = 11.0;
    row.summary.stddev = 1.0;
    row.summary.min = 10.0;
    row.summary.max = 12.0;
    row.summary.median = 11.0;
    row.summary.p25 = 10.5;
    row.summary.p75 = 11.5;
    row.mean_ci = {9.5, 12.5};
    row.completed_fraction = 2.0 / 3.0;
    row.message_mean_times = {11.0, 13.5};
    row.message_completed_fraction = {1.0, 0.5};
    row.mean_cz_step = 8.25;
    row.max_cz_step = 9.0;
    row.cz_fraction = 1.0;
    row.suburb_diameter = 14.7;
    row.wall_seconds = 0.125;
    return row;
}

TEST(Wire, SweepRowRoundTrips) {
    const engine::sweep_row row = rich_row();
    const std::string text = service::dump(service::encode_sweep_row(row));
    const engine::sweep_row back = service::decode_sweep_row(service::parse_json(text));
    expect_same_scenario(row.point.sc, back.point.sc);
    EXPECT_EQ(back.point.index, row.point.index);
    EXPECT_EQ(back.point.label, row.point.label);
    ASSERT_EQ(back.times.size(), row.times.size());
    for (std::size_t i = 0; i < row.times.size(); ++i) {
        EXPECT_EQ(bits(back.times[i]), bits(row.times[i]));
    }
    EXPECT_EQ(back.summary.count, row.summary.count);
    EXPECT_EQ(bits(back.summary.mean), bits(row.summary.mean));
    EXPECT_EQ(bits(back.summary.p75), bits(row.summary.p75));
    EXPECT_EQ(bits(back.mean_ci.lo), bits(row.mean_ci.lo));
    EXPECT_EQ(bits(back.mean_ci.hi), bits(row.mean_ci.hi));
    EXPECT_EQ(bits(back.completed_fraction), bits(row.completed_fraction));
    EXPECT_EQ(back.message_mean_times.size(), row.message_mean_times.size());
    ASSERT_TRUE(back.mean_cz_step.has_value());
    EXPECT_EQ(bits(*back.mean_cz_step), bits(*row.mean_cz_step));
    ASSERT_TRUE(back.max_cz_step.has_value());
    EXPECT_EQ(bits(*back.max_cz_step), bits(*row.max_cz_step));
    EXPECT_EQ(bits(back.cz_fraction), bits(row.cz_fraction));
    EXPECT_EQ(bits(back.suburb_diameter), bits(row.suburb_diameter));
    EXPECT_EQ(bits(back.wall_seconds), bits(row.wall_seconds));
}

TEST(Wire, SweepRowNullOptionalsRoundTrip) {
    engine::sweep_row row = rich_row();
    row.mean_cz_step.reset();
    row.max_cz_step.reset();
    const engine::sweep_row back =
        service::decode_sweep_row(service::parse_json(service::dump(service::encode_sweep_row(row))));
    EXPECT_FALSE(back.mean_cz_step.has_value());
    EXPECT_FALSE(back.max_cz_step.has_value());
}

TEST(Wire, SweepRowTruncatedLineRejected) {
    const std::string text = service::dump(service::encode_sweep_row(rich_row()));
    // A partially transmitted line must never decode into a value.
    for (const std::size_t keep : {text.size() / 4, text.size() / 2, text.size() - 1}) {
        EXPECT_THROW((void)service::parse_json(text.substr(0, keep)), service::wire_error);
    }
}

}  // namespace
